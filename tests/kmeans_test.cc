#include "cluster/kmeans.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "cluster/agglomerative.h"
#include "util/rng.h"

namespace hignn {
namespace {

// Three well-separated Gaussian blobs in 2-D.
Matrix Blobs(int per_cluster, uint64_t seed, std::vector<int32_t>* truth) {
  Rng rng(seed);
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  Matrix points(static_cast<size_t>(per_cluster) * 3, 2);
  for (int c = 0; c < 3; ++c) {
    for (int k = 0; k < per_cluster; ++k) {
      const size_t row = static_cast<size_t>(c * per_cluster + k);
      points(row, 0) = static_cast<float>(centers[c][0] + rng.Normal(0, 0.5));
      points(row, 1) = static_cast<float>(centers[c][1] + rng.Normal(0, 0.5));
      if (truth) truth->push_back(c);
    }
  }
  return points;
}

// Fraction of point pairs on which two labelings agree (same/different).
double PairAgreement(const std::vector<int32_t>& a,
                     const std::vector<int32_t>& b) {
  int64_t agree = 0;
  int64_t total = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = i + 1; j < a.size(); ++j) {
      ++total;
      if ((a[i] == a[j]) == (b[i] == b[j])) ++agree;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(total);
}

class KMeansAlgorithmTest
    : public ::testing::TestWithParam<KMeansAlgorithm> {};

TEST_P(KMeansAlgorithmTest, RecoversSeparatedBlobs) {
  std::vector<int32_t> truth;
  Matrix points = Blobs(60, 17, &truth);
  KMeansConfig config;
  config.k = 3;
  config.algorithm = GetParam();
  config.seed = 5;
  auto result = RunKMeans(points, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const double agreement = PairAgreement(result.value().assignment, truth);
  // Single-pass is an online estimator; allow it a little slack.
  const double bar =
      GetParam() == KMeansAlgorithm::kSinglePass ? 0.90 : 0.99;
  EXPECT_GE(agreement, bar);
}

TEST_P(KMeansAlgorithmTest, AssignmentsInRangeAndCentersFinite) {
  std::vector<int32_t> truth;
  Matrix points = Blobs(20, 23, &truth);
  KMeansConfig config;
  config.k = 5;
  config.algorithm = GetParam();
  auto result = RunKMeans(points, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().assignment.size(), points.rows());
  for (int32_t a : result.value().assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 5);
  }
  EXPECT_EQ(result.value().centers.rows(), 5u);
  for (size_t i = 0; i < result.value().centers.size(); ++i) {
    EXPECT_TRUE(std::isfinite(result.value().centers.data()[i]));
  }
  EXPECT_GE(result.value().inertia, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, KMeansAlgorithmTest,
                         ::testing::Values(KMeansAlgorithm::kLloyd,
                                           KMeansAlgorithm::kMiniBatch,
                                           KMeansAlgorithm::kSinglePass),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case KMeansAlgorithm::kLloyd:
                               return "Lloyd";
                             case KMeansAlgorithm::kMiniBatch:
                               return "MiniBatch";
                             case KMeansAlgorithm::kSinglePass:
                               return "SinglePass";
                           }
                           return "Unknown";
                         });

TEST(KMeansTest, KLargerThanNClamps) {
  Matrix points(3, 2, {0, 0, 5, 5, 10, 10});
  KMeansConfig config;
  config.k = 10;
  auto result = RunKMeans(points, config);
  ASSERT_TRUE(result.ok());
  // Effective k = 3: every point its own cluster.
  std::set<int32_t> labels(result.value().assignment.begin(),
                           result.value().assignment.end());
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_NEAR(result.value().inertia, 0.0, 1e-9);
}

TEST(KMeansTest, RejectsEmptyAndBadK) {
  EXPECT_FALSE(RunKMeans(Matrix(), KMeansConfig{}).ok());
  Matrix points(4, 2);
  KMeansConfig config;
  config.k = 0;
  EXPECT_FALSE(RunKMeans(points, config).ok());
}

TEST(KMeansTest, DeterministicForFixedSeed) {
  std::vector<int32_t> truth;
  Matrix points = Blobs(30, 29, &truth);
  KMeansConfig config;
  config.k = 3;
  config.seed = 77;
  auto a = RunKMeans(points, config);
  auto b = RunKMeans(points, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().assignment, b.value().assignment);
}

TEST(KMeansTest, IdenticalPointsDoNotCrash) {
  Matrix points(10, 3);
  points.Fill(1.0f);
  KMeansConfig config;
  config.k = 3;
  auto result = RunKMeans(points, config);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().inertia, 0.0, 1e-9);
}

TEST(KMeansTest, LloydInertiaDecreasesWithMoreClusters) {
  std::vector<int32_t> truth;
  Matrix points = Blobs(40, 31, &truth);
  double previous = 1e300;
  for (int32_t k : {1, 2, 3, 6}) {
    KMeansConfig config;
    config.k = k;
    config.seed = 3;
    auto result = RunKMeans(points, config);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result.value().inertia, previous + 1e-6);
    previous = result.value().inertia;
  }
}

// ------------------------------------------------------------- CH index --

TEST(CalinskiHarabaszTest, PrefersTrueK) {
  std::vector<int32_t> truth;
  Matrix points = Blobs(50, 37, &truth);
  double best_ch = -1.0;
  int32_t best_k = 0;
  for (int32_t k : {2, 3, 5, 8}) {
    KMeansConfig config;
    config.k = k;
    config.seed = 11;
    auto result = RunKMeans(points, config);
    ASSERT_TRUE(result.ok());
    const double ch =
        CalinskiHarabaszIndex(points, result.value().assignment, k);
    if (ch > best_ch) {
      best_ch = ch;
      best_k = k;
    }
  }
  EXPECT_EQ(best_k, 3);
}

TEST(CalinskiHarabaszTest, DegenerateCasesReturnZero) {
  Matrix points(5, 2);
  std::vector<int32_t> assignment(5, 0);
  EXPECT_EQ(CalinskiHarabaszIndex(points, assignment, 1), 0.0);   // k < 2
  EXPECT_EQ(CalinskiHarabaszIndex(points, assignment, 5), 0.0);   // k >= n
  EXPECT_EQ(CalinskiHarabaszIndex(points, assignment, 3), 0.0);   // 1 cluster
}

TEST(CalinskiHarabaszTest, SelectKDriver) {
  std::vector<int32_t> truth;
  Matrix points = Blobs(50, 41, &truth);
  KMeansConfig base;
  base.seed = 13;
  int32_t chosen = 0;
  auto result = SelectKByCalinskiHarabasz(points, {2, 3, 5, 9}, base, &chosen);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(chosen, 3);
  EXPECT_EQ(result.value().centers.rows(), 3u);
}

TEST(CalinskiHarabaszTest, SelectKRejectsEmptyCandidates) {
  Matrix points(4, 2);
  KMeansConfig base;
  int32_t chosen = 0;
  EXPECT_FALSE(SelectKByCalinskiHarabasz(points, {}, base, &chosen).ok());
}

// -------------------------------------------------------- Agglomerative --

TEST(AgglomerativeTest, RecoversBlobsAtCutThree) {
  std::vector<int32_t> truth;
  Matrix points = Blobs(30, 43, &truth);
  auto fit = AgglomerativeClustering::Fit(points);
  ASSERT_TRUE(fit.ok());
  auto labels = fit.value().Cut(3);
  ASSERT_TRUE(labels.ok());
  EXPECT_GE(PairAgreement(labels.value(), truth), 0.99);
}

TEST(AgglomerativeTest, CutsNestProperly) {
  std::vector<int32_t> truth;
  Matrix points = Blobs(15, 47, &truth);
  auto fit = AgglomerativeClustering::Fit(points);
  ASSERT_TRUE(fit.ok());
  auto fine = fit.value().Cut(9).ValueOrDie();
  auto coarse = fit.value().Cut(3).ValueOrDie();
  // Nesting: points in the same fine cluster share a coarse cluster.
  for (size_t i = 0; i < fine.size(); ++i) {
    for (size_t j = i + 1; j < fine.size(); ++j) {
      if (fine[i] == fine[j]) {
        EXPECT_EQ(coarse[i], coarse[j]);
      }
    }
  }
}

TEST(AgglomerativeTest, CutBoundaries) {
  std::vector<int32_t> truth;
  Matrix points = Blobs(5, 53, &truth);
  auto fit = AgglomerativeClustering::Fit(points);
  ASSERT_TRUE(fit.ok());
  // k = n: every point its own cluster.
  auto singletons = fit.value().Cut(15).ValueOrDie();
  std::set<int32_t> unique(singletons.begin(), singletons.end());
  EXPECT_EQ(unique.size(), 15u);
  // k = 1: one cluster.
  auto all = fit.value().Cut(1).ValueOrDie();
  for (int32_t l : all) EXPECT_EQ(l, 0);
  // Out of range.
  EXPECT_FALSE(fit.value().Cut(0).ok());
  EXPECT_FALSE(fit.value().Cut(16).ok());
}

TEST(AgglomerativeTest, MergeDistancesMonotoneForWard) {
  std::vector<int32_t> truth;
  Matrix points = Blobs(12, 59, &truth);
  auto fit = AgglomerativeClustering::Fit(points);
  ASSERT_TRUE(fit.ok());
  // NN-chain can report merges slightly out of order, but for separated
  // blobs the final (cross-blob) merges must dominate the early ones.
  const auto& merges = fit.value().merges();
  ASSERT_EQ(merges.size(), points.rows() - 1);
  const double early = merges.front().distance;
  const double late = merges.back().distance;
  EXPECT_GT(late, early * 10);
}

TEST(AgglomerativeTest, SinglePoint) {
  Matrix points(1, 2, {3, 4});
  auto fit = AgglomerativeClustering::Fit(points);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit.value().merges().empty());
  EXPECT_EQ(fit.value().Cut(1).ValueOrDie(), std::vector<int32_t>{0});
}

}  // namespace
}  // namespace hignn
