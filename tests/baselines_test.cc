#include <gtest/gtest.h>

#include "baselines/diffpool.h"
#include "baselines/random_walk.h"
#include "eval/metrics.h"
#include "predict/recommender.h"
#include "util/rng.h"

namespace hignn {
namespace {

// Two planted communities, as in sage_test.
BipartiteGraph PlantedGraph(uint64_t seed = 3) {
  Rng rng(seed);
  BipartiteGraphBuilder builder(40, 20);
  for (int32_t u = 0; u < 40; ++u) {
    const int32_t base = u < 20 ? 0 : 10;
    for (int k = 0; k < 6; ++k) {
      EXPECT_TRUE(
          builder
              .AddEdge(u, base + static_cast<int32_t>(rng.UniformInt(10)))
              .ok());
    }
  }
  return builder.Build();
}

// ----------------------------------------------------------- RandomWalk --

TEST(RandomWalkTest, EmbeddingsSeparateCommunities) {
  const BipartiteGraph graph = PlantedGraph();
  RandomWalkConfig config;
  config.dim = 16;
  config.epochs = 3;
  auto embeddings = TrainRandomWalkEmbeddings(graph, config);
  ASSERT_TRUE(embeddings.ok()) << embeddings.status().ToString();
  ASSERT_EQ(embeddings.value().left.rows(), 40u);
  ASSERT_EQ(embeddings.value().right.rows(), 20u);

  std::vector<float> scores;
  std::vector<float> labels;
  for (int32_t a = 0; a < 40; ++a) {
    for (int32_t b = a + 1; b < 40; ++b) {
      scores.push_back(static_cast<float>(
          RowDot(embeddings.value().left, static_cast<size_t>(a),
                 embeddings.value().left, static_cast<size_t>(b))));
      labels.push_back((a < 20) == (b < 20) ? 1.0f : 0.0f);
    }
  }
  EXPECT_GT(ComputeAuc(scores, labels).ValueOrDie(), 0.85);
}

TEST(RandomWalkTest, CrossSideEdgesScoreHigh) {
  const BipartiteGraph graph = PlantedGraph(11);
  RandomWalkConfig config;
  config.dim = 16;
  config.epochs = 3;
  auto embeddings = TrainRandomWalkEmbeddings(graph, config).ValueOrDie();
  std::vector<float> scores;
  std::vector<float> labels;
  for (int32_t u = 0; u < 40; ++u) {
    for (int32_t i = 0; i < 20; ++i) {
      scores.push_back(static_cast<float>(
          RowDot(embeddings.left, static_cast<size_t>(u), embeddings.right,
                 static_cast<size_t>(i))));
      labels.push_back((u < 20) == (i < 10) ? 1.0f : 0.0f);
    }
  }
  EXPECT_GT(ComputeAuc(scores, labels).ValueOrDie(), 0.85);
}

TEST(RandomWalkTest, RejectsBadConfigAndEmptyGraph) {
  const BipartiteGraph graph = PlantedGraph();
  RandomWalkConfig bad;
  bad.dim = 0;
  EXPECT_FALSE(TrainRandomWalkEmbeddings(graph, bad).ok());
  BipartiteGraphBuilder empty(3, 3);
  EXPECT_FALSE(
      TrainRandomWalkEmbeddings(empty.Build(), RandomWalkConfig{}).ok());
}

TEST(RandomWalkTest, DeterministicForSeed) {
  const BipartiteGraph graph = PlantedGraph();
  RandomWalkConfig config;
  config.dim = 8;
  config.epochs = 1;
  auto a = TrainRandomWalkEmbeddings(graph, config).ValueOrDie();
  auto b = TrainRandomWalkEmbeddings(graph, config).ValueOrDie();
  EXPECT_TRUE(AllClose(a.left, b.left, 0.0f));
}

// ------------------------------------------------------------- DiffPool --

TEST(DiffPoolTest, ForwardProducesPooledFeatures) {
  const BipartiteGraph graph = PlantedGraph();
  Rng rng(5);
  Matrix left(40, 4);
  Matrix right(20, 3);
  left.FillNormal(rng);
  right.FillNormal(rng);
  DiffPoolConfig config;
  config.levels = 2;
  config.hidden_dim = 8;
  auto stats = RunDiffPoolForward(graph, left, right, config);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // 60 vertices -> ratio 0.2 -> 12 -> min_clusters floor 4.
  EXPECT_EQ(stats.value().pooled_features.rows(), 4u);
  EXPECT_EQ(stats.value().pooled_features.cols(), 8u);
  EXPECT_EQ(stats.value().dense_elements, 60 * 60);
  EXPECT_GT(stats.value().flops_estimate, 0);
  for (size_t i = 0; i < stats.value().pooled_features.size(); ++i) {
    EXPECT_TRUE(std::isfinite(stats.value().pooled_features.data()[i]));
  }
}

TEST(DiffPoolTest, DenseCostGrowsQuadratically) {
  Rng rng(7);
  int64_t previous_elements = 0;
  for (int32_t scale : {20, 40, 80}) {
    BipartiteGraphBuilder builder(scale, scale);
    for (int32_t u = 0; u < scale; ++u) {
      ASSERT_TRUE(
          builder.AddEdge(u, static_cast<int32_t>(rng.UniformInt(scale)))
              .ok());
    }
    Matrix left(static_cast<size_t>(scale), 4);
    Matrix right(static_cast<size_t>(scale), 4);
    left.FillNormal(rng);
    right.FillNormal(rng);
    auto stats =
        RunDiffPoolForward(builder.Build(), left, right, DiffPoolConfig{});
    ASSERT_TRUE(stats.ok());
    if (previous_elements > 0) {
      // Doubling n quadruples the dense adjacency.
      EXPECT_EQ(stats.value().dense_elements, previous_elements * 4);
    }
    previous_elements = stats.value().dense_elements;
  }
}

TEST(DiffPoolTest, RefusesOversizedGraphs) {
  // 40k + 40k vertices -> 6.4e9 dense floats -> must refuse, not OOM.
  BipartiteGraphBuilder builder(40000, 40000);
  ASSERT_TRUE(builder.AddEdge(0, 0).ok());
  Matrix left(40000, 1);
  Matrix right(40000, 1);
  auto stats =
      RunDiffPoolForward(builder.Build(), left, right, DiffPoolConfig{});
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DiffPoolTest, RejectsBadInputs) {
  const BipartiteGraph graph = PlantedGraph();
  Matrix wrong(7, 4);
  Matrix right(20, 4);
  EXPECT_FALSE(RunDiffPoolForward(graph, wrong, right, DiffPoolConfig{}).ok());
  Matrix left(40, 4);
  DiffPoolConfig bad;
  bad.hidden_dim = 0;
  EXPECT_FALSE(RunDiffPoolForward(graph, left, right, bad).ok());
}

}  // namespace
}  // namespace hignn
