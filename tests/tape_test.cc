#include "nn/tape.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "nn/grad_check.h"
#include "nn/matrix.h"
#include "util/rng.h"

namespace hignn {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.FillNormal(rng, 1.0f);
  return m;
}

// Builds a scalar loss from a single differentiable input `point` via
// `graph` and checks the tape gradient against finite differences.
void CheckOpGradient(
    const Matrix& point,
    const std::function<VarId(Tape&, VarId)>& graph_builder) {
  auto loss_fn = [&](const Matrix& x) {
    Tape tape;
    VarId input = tape.Input(x, true);
    VarId loss = graph_builder(tape, input);
    return static_cast<double>(tape.value(loss)(0, 0));
  };

  Tape tape;
  VarId input = tape.Input(point, true);
  VarId loss = graph_builder(tape, input);
  tape.Backward(loss);
  const GradCheckResult result =
      CheckGradient(loss_fn, point, tape.grad(input));
  EXPECT_TRUE(result.passed)
      << "max_abs=" << result.max_abs_error
      << " max_rel=" << result.max_rel_error;
}

TEST(TapeTest, InputHoldsValue) {
  Tape tape;
  Matrix m = RandomMatrix(3, 4, 1);
  VarId id = tape.Input(m);
  EXPECT_TRUE(AllClose(tape.value(id), m));
}

TEST(TapeTest, MatMulForward) {
  Tape tape;
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {5, 6, 7, 8});
  VarId c = tape.MatMul(tape.Input(a), tape.Input(b));
  EXPECT_FLOAT_EQ(tape.value(c)(0, 0), 19);
  EXPECT_FLOAT_EQ(tape.value(c)(0, 1), 22);
  EXPECT_FLOAT_EQ(tape.value(c)(1, 0), 43);
  EXPECT_FLOAT_EQ(tape.value(c)(1, 1), 50);
}

TEST(TapeTest, MatMulGradientLeft) {
  const Matrix b = RandomMatrix(4, 3, 7);
  CheckOpGradient(RandomMatrix(2, 4, 3), [&](Tape& tape, VarId x) {
    return tape.MeanAll(tape.MatMul(x, tape.Input(b)));
  });
}

TEST(TapeTest, MatMulGradientRight) {
  const Matrix a = RandomMatrix(3, 4, 11);
  CheckOpGradient(RandomMatrix(4, 2, 5), [&](Tape& tape, VarId x) {
    return tape.MeanAll(tape.MatMul(tape.Input(a), x));
  });
}

TEST(TapeTest, AddGradient) {
  const Matrix b = RandomMatrix(3, 3, 17);
  CheckOpGradient(RandomMatrix(3, 3, 13), [&](Tape& tape, VarId x) {
    return tape.MeanAll(tape.Add(x, tape.Input(b)));
  });
}

TEST(TapeTest, SubGradient) {
  const Matrix b = RandomMatrix(3, 3, 19);
  CheckOpGradient(RandomMatrix(3, 3, 23), [&](Tape& tape, VarId x) {
    return tape.MeanAll(tape.Sub(x, tape.Input(b)));
  });
}

TEST(TapeTest, MulGradient) {
  const Matrix b = RandomMatrix(3, 3, 29);
  CheckOpGradient(RandomMatrix(3, 3, 31), [&](Tape& tape, VarId x) {
    return tape.MeanAll(tape.Mul(x, tape.Input(b)));
  });
}

TEST(TapeTest, AddRowBroadcastGradientOnBias) {
  const Matrix a = RandomMatrix(4, 3, 37);
  CheckOpGradient(RandomMatrix(1, 3, 41), [&](Tape& tape, VarId bias) {
    return tape.MeanAll(tape.AddRowBroadcast(tape.Input(a), bias));
  });
}

TEST(TapeTest, ScalarMulGradient) {
  CheckOpGradient(RandomMatrix(2, 5, 43), [&](Tape& tape, VarId x) {
    return tape.MeanAll(tape.ScalarMul(x, -2.5f));
  });
}

TEST(TapeTest, ConcatColsGradient) {
  const Matrix b = RandomMatrix(3, 2, 47);
  CheckOpGradient(RandomMatrix(3, 4, 53), [&](Tape& tape, VarId x) {
    // Square so both halves contribute nonlinearly.
    VarId cat = tape.ConcatCols(x, tape.Input(b));
    return tape.MeanAll(tape.Mul(cat, cat));
  });
}

TEST(TapeTest, ConcatColsNForwardLayout) {
  Tape tape;
  Matrix a(1, 2, {1, 2});
  Matrix b(1, 1, {3});
  Matrix c(1, 2, {4, 5});
  VarId cat = tape.ConcatColsN({tape.Input(a), tape.Input(b), tape.Input(c)});
  const Matrix& v = tape.value(cat);
  ASSERT_EQ(v.cols(), 5u);
  EXPECT_FLOAT_EQ(v(0, 0), 1);
  EXPECT_FLOAT_EQ(v(0, 2), 3);
  EXPECT_FLOAT_EQ(v(0, 4), 5);
}

TEST(TapeTest, GatherRowsForward) {
  Tape tape;
  Matrix a(3, 2, {1, 2, 3, 4, 5, 6});
  VarId g = tape.GatherRows(tape.Input(a), {2, 0, 2});
  const Matrix& v = tape.value(g);
  ASSERT_EQ(v.rows(), 3u);
  EXPECT_FLOAT_EQ(v(0, 0), 5);
  EXPECT_FLOAT_EQ(v(1, 0), 1);
  EXPECT_FLOAT_EQ(v(2, 1), 6);
}

TEST(TapeTest, GatherRowsGradientAccumulatesDuplicates) {
  CheckOpGradient(RandomMatrix(3, 2, 59), [&](Tape& tape, VarId x) {
    VarId g = tape.GatherRows(x, {0, 0, 2});
    return tape.MeanAll(tape.Mul(g, g));
  });
}

TEST(TapeTest, GroupMeanRowsForward) {
  Tape tape;
  Matrix a(3, 2, {2, 4, 6, 8, 10, 12});
  VarId g = tape.GroupMeanRows(tape.Input(a), {{0, 1}, {}, {2}});
  const Matrix& v = tape.value(g);
  ASSERT_EQ(v.rows(), 3u);
  EXPECT_FLOAT_EQ(v(0, 0), 4);   // mean of 2, 6
  EXPECT_FLOAT_EQ(v(1, 0), 0);   // empty group -> zero row
  EXPECT_FLOAT_EQ(v(2, 1), 12);
}

TEST(TapeTest, GroupMeanRowsGradient) {
  CheckOpGradient(RandomMatrix(4, 3, 61), [&](Tape& tape, VarId x) {
    VarId g = tape.GroupMeanRows(x, {{0, 1, 2}, {3, 3}, {}});
    return tape.MeanAll(tape.Mul(g, g));
  });
}

TEST(TapeTest, GroupWeightedSumRowsForwardAndGradient) {
  {
    Tape tape;
    Matrix a(2, 1, {10, 20});
    VarId g = tape.GroupWeightedSumRows(tape.Input(a), {{0, 1}},
                                        {{0.25f, 0.75f}});
    EXPECT_FLOAT_EQ(tape.value(g)(0, 0), 17.5f);
  }
  CheckOpGradient(RandomMatrix(3, 2, 67), [&](Tape& tape, VarId x) {
    VarId g = tape.GroupWeightedSumRows(x, {{0, 1}, {2}},
                                        {{0.3f, 0.7f}, {1.0f}});
    return tape.MeanAll(tape.Mul(g, g));
  });
}

TEST(TapeTest, SigmoidGradient) {
  CheckOpGradient(RandomMatrix(3, 3, 71), [&](Tape& tape, VarId x) {
    return tape.MeanAll(tape.Sigmoid(x));
  });
}

TEST(TapeTest, TanhGradient) {
  CheckOpGradient(RandomMatrix(3, 3, 73), [&](Tape& tape, VarId x) {
    return tape.MeanAll(tape.Tanh(x));
  });
}

TEST(TapeTest, LeakyReluGradient) {
  // Offset away from zero to avoid kinks in the finite difference.
  Matrix point = RandomMatrix(3, 3, 79);
  for (size_t i = 0; i < point.size(); ++i) {
    if (std::fabs(point.data()[i]) < 0.1f) point.data()[i] = 0.5f;
  }
  CheckOpGradient(point, [&](Tape& tape, VarId x) {
    return tape.MeanAll(tape.LeakyRelu(x, 0.1f));
  });
}

TEST(TapeTest, ReluForward) {
  Tape tape;
  Matrix a(1, 3, {-1, 0, 2});
  const Matrix& v = tape.value(tape.Relu(tape.Input(a)));
  EXPECT_FLOAT_EQ(v(0, 0), 0);
  EXPECT_FLOAT_EQ(v(0, 2), 2);
}

TEST(TapeTest, RowL2NormalizeForward) {
  Tape tape;
  Matrix a(2, 2, {3, 4, 0, 0});
  const Matrix& v = tape.value(tape.RowL2Normalize(tape.Input(a)));
  EXPECT_NEAR(v(0, 0), 0.6f, 1e-6);
  EXPECT_NEAR(v(0, 1), 0.8f, 1e-6);
  EXPECT_FLOAT_EQ(v(1, 0), 0.0f);  // zero row passes through
}

TEST(TapeTest, RowL2NormalizeGradient) {
  const Matrix b = RandomMatrix(3, 4, 83);
  CheckOpGradient(RandomMatrix(3, 4, 89), [&](Tape& tape, VarId x) {
    VarId y = tape.RowL2Normalize(x);
    return tape.MeanAll(tape.Mul(y, tape.Input(b)));
  });
}

TEST(TapeTest, SumAllAndMeanAll) {
  Tape tape;
  Matrix a(2, 2, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(tape.value(tape.SumAll(tape.Input(a)))(0, 0), 10);
  EXPECT_FLOAT_EQ(tape.value(tape.MeanAll(tape.Input(a)))(0, 0), 2.5f);
}

TEST(TapeTest, BceWithLogitsMatchesClosedForm) {
  Tape tape;
  Matrix logits(2, 1, {0.0f, 100.0f});
  VarId loss = tape.BceWithLogits(tape.Input(logits), {1.0f, 1.0f});
  // -log(0.5) averaged with ~0.
  EXPECT_NEAR(tape.value(loss)(0, 0), std::log(2.0) / 2.0, 1e-5);
}

TEST(TapeTest, BceWithLogitsStableAtExtremeLogits) {
  Tape tape;
  Matrix logits(2, 1, {-500.0f, 500.0f});
  VarId loss = tape.BceWithLogits(tape.Input(logits), {0.0f, 1.0f});
  EXPECT_NEAR(tape.value(loss)(0, 0), 0.0, 1e-6);
  Tape tape2;
  VarId bad = tape2.BceWithLogits(tape2.Input(logits), {1.0f, 0.0f});
  EXPECT_NEAR(tape2.value(bad)(0, 0), 500.0, 1e-3);  // finite, not inf/nan
}

TEST(TapeTest, BceWithLogitsGradient) {
  CheckOpGradient(RandomMatrix(5, 1, 97), [&](Tape& tape, VarId x) {
    return tape.BceWithLogits(x, {1, 0, 1, 0, 1});
  });
}

TEST(TapeTest, BceWithLogitsWeightedGradient) {
  CheckOpGradient(RandomMatrix(4, 1, 101), [&](Tape& tape, VarId x) {
    return tape.BceWithLogits(x, {1, 0, 0, 1}, {1.0f, 3.0f, 3.0f, 0.5f});
  });
}

TEST(TapeTest, CompositeGraphGradient) {
  // A miniature GraphSAGE-shaped computation: gather + group-mean +
  // matmul + concat + nonlinearity + normalize + BCE.
  const Matrix w = RandomMatrix(6, 4, 103);
  const Matrix w2 = RandomMatrix(8, 1, 107);
  CheckOpGradient(RandomMatrix(5, 3, 109), [&](Tape& tape, VarId x) {
    VarId agg = tape.GroupMeanRows(x, {{0, 1}, {2, 3, 4}, {1, 4}});
    VarId self = tape.GatherRows(x, {0, 2, 4});
    VarId cat = tape.ConcatCols(self, agg);  // 3 x 6
    VarId h = tape.LeakyRelu(tape.MatMul(cat, tape.Input(w)), 0.2f);
    VarId z = tape.RowL2Normalize(h);        // 3 x 4
    VarId pairs = tape.ConcatCols(z, z);     // 3 x 8
    VarId logits = tape.MatMul(pairs, tape.Input(w2));
    return tape.BceWithLogits(logits, {1, 0, 1});
  });
}

TEST(TapeDeathTest, DoubleBackwardAborts) {
  EXPECT_DEATH(
      {
        Tape tape;
        Matrix one(1, 1, {2.0f});
        VarId x = tape.Input(one, true);
        VarId loss = tape.MeanAll(tape.Mul(x, x));
        tape.Backward(loss);
        tape.Backward(loss);
      },
      "Check failed");
}

TEST(TapeDeathTest, BackwardRequiresScalarRoot) {
  EXPECT_DEATH(
      {
        Tape tape;
        Matrix m(2, 2);
        VarId x = tape.Input(m, true);
        tape.Backward(x);  // 2x2 root is invalid
      },
      "Check failed");
}

TEST(TapeDeathTest, GatherRowsRejectsOutOfRange) {
  EXPECT_DEATH(
      {
        Tape tape;
        Matrix m(2, 2);
        tape.GatherRows(tape.Input(m), {0, 5});
      },
      "Check failed");
}

TEST(TapeTest, NoGradForConstLeaf) {
  Tape tape;
  Matrix a = RandomMatrix(2, 2, 113);
  VarId x = tape.Input(a, false);
  VarId loss = tape.MeanAll(tape.Mul(x, x));
  tape.Backward(loss);
  EXPECT_TRUE(tape.grad(x).empty());
}

}  // namespace
}  // namespace hignn
