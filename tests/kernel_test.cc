// Kernel-layer contracts (nn/simd.h and its consumers):
//  - every SIMD kernel is bitwise identical to the scalar reference, tails
//    and odd shapes included;
//  - every GEMM variant is bitwise identical across ISA paths and thread
//    counts;
//  - the fused constant-source tape ops (GatherRowsFrom / GroupMeanRowsFrom
//    / GroupWeightedSumRowsFrom) reproduce Input(copy) + op bit for bit,
//    all the way up to a full Fit with fused_level0 on vs off.
// This suite runs twice: once as `kernels.` and once inside the tsan
// binary, where the 1-vs-4-thread cases double as race detectors.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/hignn.h"
#include "data/synthetic.h"
#include "nn/matrix.h"
#include "nn/simd.h"
#include "nn/tape.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hignn {
namespace {

// Restores the dispatch path (and a 1-thread pool) when a test exits, so
// path-forcing tests cannot leak state into later ones.
class PathGuard {
 public:
  PathGuard() : saved_(simd::Active()) {}
  ~PathGuard() {
    simd::ForcePathForTesting(saved_);
    SetGlobalThreadPoolThreads(1);
  }

 private:
  simd::IsaPath saved_;
};

::testing::AssertionResult BitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "shape " << a.rows() << "x" << a.cols() << " vs " << b.rows()
           << "x" << b.cols();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.data()[i] != b.data()[i]) {
      return ::testing::AssertionFailure()
             << "element " << i << ": " << a.data()[i] << " vs "
             << b.data()[i];
    }
  }
  return ::testing::AssertionSuccess();
}

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  m.FillNormal(rng);
  return m;
}

std::vector<float> RandomVector(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Normal(0.0, 1.0));
  return v;
}

// Shapes chosen to exercise every tail: full 8-wide vector panels, partial
// column tails (n % 8 != 0), partial row tiles (m % kGemmRowTile != 0),
// degenerate 1xN / Nx1, and empties.
struct GemmShape {
  size_t m, k, n;
};

const GemmShape kGemmShapes[] = {
    {3, 7, 5},    {1, 33, 17}, {17, 1, 9},  {5, 9, 1},   {64, 64, 64},
    {4, 8, 8},    {6, 16, 24}, {12, 100, 130}, {8, 3, 31}, {0, 4, 4},
    {4, 0, 4},    {4, 4, 0},
};

TEST(SimdParityTest, MatMulScalarVsBestBitwiseIdentical) {
  PathGuard guard;
  for (const GemmShape& s : kGemmShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, 11 + s.m);
    const Matrix b = RandomMatrix(s.k, s.n, 23 + s.n);
    simd::ForcePathForTesting(simd::IsaPath::kScalar);
    const Matrix scalar = MatMul(a, b);
    simd::ForcePathForTesting(simd::Best());
    const Matrix best = MatMul(a, b);
    EXPECT_TRUE(BitwiseEqual(scalar, best))
        << "shape " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(SimdParityTest, MatMulBTScalarVsBestBitwiseIdentical) {
  PathGuard guard;
  for (const GemmShape& s : kGemmShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, 31 + s.m);
    const Matrix b = RandomMatrix(s.n, s.k, 41 + s.n);
    simd::ForcePathForTesting(simd::IsaPath::kScalar);
    const Matrix scalar = MatMulBT(a, b);
    simd::ForcePathForTesting(simd::Best());
    const Matrix best = MatMulBT(a, b);
    EXPECT_TRUE(BitwiseEqual(scalar, best))
        << "shape " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(SimdParityTest, MatMulATScalarVsBestBitwiseIdentical) {
  PathGuard guard;
  for (const GemmShape& s : kGemmShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, 53 + s.m);
    const Matrix b = RandomMatrix(s.m, s.n, 61 + s.n);
    simd::ForcePathForTesting(simd::IsaPath::kScalar);
    const Matrix scalar = MatMulAT(a, b);
    simd::ForcePathForTesting(simd::Best());
    const Matrix best = MatMulAT(a, b);
    EXPECT_TRUE(BitwiseEqual(scalar, best))
        << "shape " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(SimdParityTest, AccumulateAndAxpyAllTailLengths) {
  PathGuard guard;
  for (size_t n = 0; n <= 35; ++n) {
    const std::vector<float> src = RandomVector(n, 71 + n);
    const std::vector<float> base = RandomVector(n, 83 + n);

    std::vector<float> scalar_acc = base;
    std::vector<float> best_acc = base;
    simd::ForcePathForTesting(simd::IsaPath::kScalar);
    simd::Accumulate(scalar_acc.data(), src.data(), n);
    simd::ForcePathForTesting(simd::Best());
    simd::Accumulate(best_acc.data(), src.data(), n);
    EXPECT_EQ(scalar_acc, best_acc) << "Accumulate n=" << n;

    std::vector<float> scalar_axpy = base;
    std::vector<float> best_axpy = base;
    simd::ForcePathForTesting(simd::IsaPath::kScalar);
    simd::Axpy(scalar_axpy.data(), 0.37f, src.data(), n);
    simd::ForcePathForTesting(simd::Best());
    simd::Axpy(best_axpy.data(), 0.37f, src.data(), n);
    EXPECT_EQ(scalar_axpy, best_axpy) << "Axpy n=" << n;
  }
}

TEST(SimdParityTest, DotAndSquaredDistanceAllTailLengths) {
  PathGuard guard;
  for (size_t n = 0; n <= 35; ++n) {
    const std::vector<float> x = RandomVector(n, 101 + n);
    const std::vector<float> y = RandomVector(n, 113 + n);
    simd::ForcePathForTesting(simd::IsaPath::kScalar);
    const double scalar_dot = simd::Dot(x.data(), y.data(), n);
    const double scalar_sq = simd::SquaredDistance(x.data(), y.data(), n);
    simd::ForcePathForTesting(simd::Best());
    const double best_dot = simd::Dot(x.data(), y.data(), n);
    const double best_sq = simd::SquaredDistance(x.data(), y.data(), n);
    EXPECT_EQ(scalar_dot, best_dot) << "Dot n=" << n;
    EXPECT_EQ(scalar_sq, best_sq) << "SquaredDistance n=" << n;
  }
}

TEST(SimdParityTest, DotMatchesLaneStridedReference) {
  // Pins the documented reduction schedule itself, not just scalar/vector
  // agreement: lane l owns indices congruent to l, merged in fixed order.
  PathGuard guard;
  const size_t n = 29;
  const std::vector<float> x = RandomVector(n, 131);
  const std::vector<float> y = RandomVector(n, 137);
  double lane[simd::kReduceLanes] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < n; ++i) {
    lane[i % simd::kReduceLanes] += static_cast<double>(x[i]) * y[i];
  }
  const double expected = ((lane[0] + lane[1]) + lane[2]) + lane[3];
  simd::ForcePathForTesting(simd::Best());
  EXPECT_EQ(expected, simd::Dot(x.data(), y.data(), n));
  simd::ForcePathForTesting(simd::IsaPath::kScalar);
  EXPECT_EQ(expected, simd::Dot(x.data(), y.data(), n));
}

TEST(SimdParityTest, RowReductionsRouteThroughSimd) {
  PathGuard guard;
  const Matrix m = RandomMatrix(2, 21, 149);
  simd::ForcePathForTesting(simd::IsaPath::kScalar);
  const double scalar_dot = RowDot(m, 0, m, 1);
  const double scalar_sq = RowSquaredDistance(m, 0, m, 1);
  simd::ForcePathForTesting(simd::Best());
  EXPECT_EQ(scalar_dot, RowDot(m, 0, m, 1));
  EXPECT_EQ(scalar_sq, RowSquaredDistance(m, 0, m, 1));
}

TEST(ParallelKernelTest, GemmVariantsOneVsFourThreadsOnBestPath) {
  PathGuard guard;
  simd::ForcePathForTesting(simd::Best());
  const Matrix a = RandomMatrix(128, 64, 157);
  const Matrix b = RandomMatrix(64, 48, 163);
  const Matrix c = RandomMatrix(96, 64, 167);
  const Matrix d = RandomMatrix(128, 80, 173);
  SetGlobalThreadPoolThreads(1);
  const Matrix mm1 = MatMul(a, b);
  const Matrix bt1 = MatMulBT(a, c);
  const Matrix at1 = MatMulAT(a, d);
  SetGlobalThreadPoolThreads(4);
  const Matrix mm4 = MatMul(a, b);
  const Matrix bt4 = MatMulBT(a, c);
  const Matrix at4 = MatMulAT(a, d);
  SetGlobalThreadPoolThreads(1);
  EXPECT_TRUE(BitwiseEqual(mm1, mm4));
  EXPECT_TRUE(BitwiseEqual(bt1, bt4));
  EXPECT_TRUE(BitwiseEqual(at1, at4));
}

// --- Fused constant-source tape ops ----------------------------------------

std::vector<std::vector<int32_t>> TestGroups() {
  return {{0, 3, 3, 7}, {}, {5, 1}, {9, 0, 2, 2, 8}};
}

TEST(FusedAggregateTest, GatherRowsFromMatchesInputPlusGather) {
  const Matrix src = RandomMatrix(10, 13, 179);
  const std::vector<int32_t> index = {7, 0, 0, 9, 4};
  Tape unfused;
  VarId in = unfused.Input(src);
  VarId gathered = unfused.GatherRows(in, index);
  Tape fused;
  VarId direct = fused.GatherRowsFrom(src, index);
  EXPECT_TRUE(BitwiseEqual(unfused.value(gathered), fused.value(direct)));
}

TEST(FusedAggregateTest, GroupMeanRowsFromMatchesInputPlusGroupMean) {
  const Matrix src = RandomMatrix(10, 13, 181);
  Tape unfused;
  VarId in = unfused.Input(src);
  VarId mean = unfused.GroupMeanRows(in, TestGroups());
  Tape fused;
  VarId direct = fused.GroupMeanRowsFrom(src, TestGroups());
  EXPECT_TRUE(BitwiseEqual(unfused.value(mean), fused.value(direct)));
}

TEST(FusedAggregateTest, GroupWeightedSumRowsFromMatchesUnfused) {
  const Matrix src = RandomMatrix(10, 13, 191);
  std::vector<std::vector<float>> weights;
  Rng rng(193);
  for (const auto& g : TestGroups()) {
    std::vector<float> w(g.size());
    for (float& x : w) x = static_cast<float>(rng.Uniform(0.0, 1.0));
    weights.push_back(std::move(w));
  }
  Tape unfused;
  VarId in = unfused.Input(src);
  VarId sum = unfused.GroupWeightedSumRows(in, TestGroups(), weights);
  Tape fused;
  VarId direct = fused.GroupWeightedSumRowsFrom(src, TestGroups(), weights);
  EXPECT_TRUE(BitwiseEqual(unfused.value(sum), fused.value(direct)));
}

HignnModel FitWithFusion(bool fused, int threads) {
  SyntheticConfig data_config = SyntheticConfig::Tiny();
  auto dataset = SyntheticDataset::Generate(data_config);
  EXPECT_TRUE(dataset.ok());
  const BipartiteGraph graph = dataset.value().BuildTrainGraph();

  HignnConfig config;
  config.levels = 2;
  config.sage.dims = {8, 8};
  config.sage.fanouts = {5, 3};
  config.sage.train_steps = 8;
  config.sage.batch_size = 64;
  config.sage.fused_level0 = fused;
  config.num_threads = threads;
  auto model = Hignn::Fit(graph, dataset.value().user_features(),
                          dataset.value().item_features(), config);
  SetGlobalThreadPoolThreads(1);
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

void ExpectModelsIdentical(const HignnModel& a, const HignnModel& b) {
  ASSERT_EQ(a.num_levels(), b.num_levels());
  for (int32_t l = 0; l < a.num_levels(); ++l) {
    const HignnLevel& la = a.levels()[static_cast<size_t>(l)];
    const HignnLevel& lb = b.levels()[static_cast<size_t>(l)];
    EXPECT_EQ(la.left_assignment, lb.left_assignment) << "level " << l;
    EXPECT_EQ(la.right_assignment, lb.right_assignment) << "level " << l;
    EXPECT_TRUE(BitwiseEqual(la.left_embeddings, lb.left_embeddings))
        << "left embeddings, level " << l;
    EXPECT_TRUE(BitwiseEqual(la.right_embeddings, lb.right_embeddings))
        << "right embeddings, level " << l;
    EXPECT_EQ(la.train_loss, lb.train_loss) << "level " << l;
  }
}

TEST(FusedAggregateTest, FitFusedVsUnfusedBitwiseIdentical) {
  const HignnModel fused = FitWithFusion(true, 1);
  const HignnModel unfused = FitWithFusion(false, 1);
  ExpectModelsIdentical(fused, unfused);
}

TEST(FusedAggregateTest, FitFusedOneVsFourThreadsBitwiseIdentical) {
  const HignnModel one = FitWithFusion(true, 1);
  const HignnModel four = FitWithFusion(true, 4);
  ExpectModelsIdentical(one, four);
}

TEST(FusedAggregateTest, FitScalarVsBestPathBitwiseIdentical) {
  PathGuard guard;
  simd::ForcePathForTesting(simd::IsaPath::kScalar);
  const HignnModel scalar = FitWithFusion(true, 1);
  simd::ForcePathForTesting(simd::Best());
  const HignnModel best = FitWithFusion(true, 1);
  ExpectModelsIdentical(scalar, best);
}

}  // namespace
}  // namespace hignn
