#include "nn/matrix.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hignn {
namespace {

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
}

TEST(MatrixTest, FromDataRowMajor) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(m(0, 0), 1);
  EXPECT_FLOAT_EQ(m(0, 2), 3);
  EXPECT_FLOAT_EQ(m(1, 0), 4);
  EXPECT_FLOAT_EQ(m(1, 2), 6);
}

TEST(MatrixTest, FillAndScale) {
  Matrix m(2, 2);
  m.Fill(3.0f);
  m.Scale(2.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 6.0f);
  EXPECT_FLOAT_EQ(m.Sum(), 24.0);
}

TEST(MatrixTest, AddAndAxpy) {
  Matrix a(1, 3, {1, 2, 3});
  Matrix b(1, 3, {10, 20, 30});
  a.Add(b);
  EXPECT_FLOAT_EQ(a(0, 2), 33);
  a.Axpy(-0.5f, b);
  EXPECT_FLOAT_EQ(a(0, 0), 6);
}

TEST(MatrixTest, RowAccessors) {
  Matrix m(2, 2, {1, 2, 3, 4});
  m.SetRow(0, {9, 8});
  EXPECT_FLOAT_EQ(m(0, 1), 8);
  const auto row = m.GetRow(1);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_FLOAT_EQ(row[0], 3);
}

TEST(MatrixTest, NormsAndMaxAbs) {
  Matrix m(1, 3, {3, -4, 0});
  EXPECT_DOUBLE_EQ(m.SquaredNorm(), 25.0);
  EXPECT_FLOAT_EQ(m.MaxAbs(), 4.0f);
}

TEST(MatrixTest, FillNormalStatistics) {
  Rng rng(3);
  Matrix m(100, 100);
  m.FillNormal(rng, 2.0f);
  EXPECT_NEAR(m.Sum() / m.size(), 0.0, 0.05);
  EXPECT_NEAR(m.SquaredNorm() / m.size(), 4.0, 0.15);
}

TEST(MatrixTest, FillUniformRange) {
  Rng rng(5);
  Matrix m(50, 50);
  m.FillUniform(rng, -1.0f, 1.0f);
  EXPECT_LE(m.MaxAbs(), 1.0f);
  EXPECT_NEAR(m.Sum() / m.size(), 0.0, 0.05);
}

TEST(MatMulTest, KnownProduct) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 58);
  EXPECT_FLOAT_EQ(c(0, 1), 64);
  EXPECT_FLOAT_EQ(c(1, 0), 139);
  EXPECT_FLOAT_EQ(c(1, 1), 154);
}

TEST(MatMulTest, TransposedVariantsAgree) {
  Rng rng(9);
  Matrix a(4, 6);
  Matrix b(6, 5);
  a.FillNormal(rng);
  b.FillNormal(rng);
  const Matrix reference = MatMul(a, b);
  // a * b == a * (b^T)^T  via MatMulBT.
  EXPECT_TRUE(AllClose(MatMulBT(a, Transpose(b)), reference, 1e-4f));
  // a * b == (a^T)^T * b via MatMulAT.
  EXPECT_TRUE(AllClose(MatMulAT(Transpose(a), b), reference, 1e-4f));
}

TEST(MatMulTest, IdentityPreserves) {
  Matrix eye(3, 3);
  for (size_t i = 0; i < 3; ++i) eye(i, i) = 1.0f;
  Matrix m(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_TRUE(AllClose(MatMul(eye, m), m));
  EXPECT_TRUE(AllClose(MatMul(m, eye), m));
}

TEST(TransposeTest, Involution) {
  Rng rng(15);
  Matrix m(3, 7);
  m.FillNormal(rng);
  EXPECT_TRUE(AllClose(Transpose(Transpose(m)), m));
}

TEST(RowOpsTest, DistanceAndDot) {
  Matrix a(2, 2, {0, 0, 3, 4});
  EXPECT_DOUBLE_EQ(RowSquaredDistance(a, 0, a, 1), 25.0);
  EXPECT_DOUBLE_EQ(RowDot(a, 1, a, 1), 25.0);
  EXPECT_DOUBLE_EQ(RowDot(a, 0, a, 1), 0.0);
}

TEST(AllCloseTest, DetectsShapeAndValueDiffs) {
  Matrix a(1, 2, {1, 2});
  Matrix b(2, 1, {1, 2});
  Matrix c(1, 2, {1, 2.1f});
  EXPECT_FALSE(AllClose(a, b));
  EXPECT_FALSE(AllClose(a, c, 0.05f));
  EXPECT_TRUE(AllClose(a, c, 0.2f));
}

TEST(MatrixTest, ToStringTruncates) {
  Matrix m(10, 10);
  const std::string s = m.ToString(2, 2);
  EXPECT_NE(s.find("Matrix(10x10)"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace hignn
