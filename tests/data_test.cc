#include "data/synthetic.h"

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "data/query_dataset.h"
#include "data/topic_tree.h"

namespace hignn {
namespace {

// --------------------------------------------------------------- TopicTree --

TEST(TopicTreeTest, ShapeMatchesConfig) {
  TopicTree::Config config;
  config.depth = 3;
  config.branching = 4;
  auto tree = TopicTree::Generate(config);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value().CountAtLevel(0), 1);
  EXPECT_EQ(tree.value().CountAtLevel(1), 4);
  EXPECT_EQ(tree.value().CountAtLevel(2), 16);
  EXPECT_EQ(tree.value().CountAtLevel(3), 64);
  EXPECT_EQ(tree.value().leaves().size(), 64u);
  EXPECT_EQ(tree.value().nodes().size(), 1u + 4u + 16u + 64u);
}

TEST(TopicTreeTest, AncestorChains) {
  TopicTree::Config config;
  config.depth = 3;
  config.branching = 2;
  auto tree = TopicTree::Generate(config).ValueOrDie();
  for (int32_t leaf : tree.leaves()) {
    EXPECT_EQ(tree.AncestorAtLevel(leaf, 0), 0);
    const int32_t mid = tree.AncestorAtLevel(leaf, 2);
    EXPECT_EQ(tree.node(mid).level, 2);
    EXPECT_TRUE(tree.IsAncestor(mid, leaf));
    EXPECT_TRUE(tree.IsAncestor(0, leaf));
    EXPECT_FALSE(tree.IsAncestor(leaf, mid));
    // Ancestor at the node's own level is the node itself.
    EXPECT_EQ(tree.AncestorAtLevel(leaf, 3), leaf);
  }
}

TEST(TopicTreeTest, SiblingsCloserThanCousins) {
  TopicTree::Config config;
  config.depth = 2;
  config.branching = 3;
  config.latent_dim = 24;
  config.seed = 99;
  auto tree = TopicTree::Generate(config).ValueOrDie();

  auto dist = [&](int32_t a, int32_t b) {
    double total = 0;
    for (size_t d = 0; d < tree.node(a).latent.size(); ++d) {
      const double diff = tree.node(a).latent[d] - tree.node(b).latent[d];
      total += diff * diff;
    }
    return total;
  };
  // Average sibling (same parent) vs cross-branch leaf distance.
  double sibling = 0.0;
  double cousin = 0.0;
  int sibling_count = 0;
  int cousin_count = 0;
  for (int32_t a : tree.leaves()) {
    for (int32_t b : tree.leaves()) {
      if (a >= b) continue;
      if (tree.node(a).parent == tree.node(b).parent) {
        sibling += dist(a, b);
        ++sibling_count;
      } else {
        cousin += dist(a, b);
        ++cousin_count;
      }
    }
  }
  EXPECT_LT(sibling / sibling_count, cousin / cousin_count);
}

TEST(TopicTreeTest, WordPoolIncludesAncestors) {
  TopicTree::Config config;
  config.depth = 2;
  config.branching = 2;
  config.words_per_topic = 3;
  auto tree = TopicTree::Generate(config).ValueOrDie();
  const int32_t leaf = tree.leaves().front();
  const auto pool = tree.WordPool(leaf);
  // Leaf words + parent words (root has none by default naming scheme but
  // contributes its — empty — list).
  EXPECT_GE(pool.size(), 6u);
}

TEST(TopicTreeTest, RejectsBadConfig) {
  TopicTree::Config config;
  config.depth = 0;
  EXPECT_FALSE(TopicTree::Generate(config).ok());
}

TEST(TopicTreeTest, ConversionBiasVaries) {
  TopicTree::Config config;
  config.depth = 2;
  config.branching = 4;
  auto tree = TopicTree::Generate(config).ValueOrDie();
  std::set<float> biases;
  for (int32_t leaf : tree.leaves()) {
    biases.insert(tree.node(leaf).conversion_bias);
  }
  EXPECT_GT(biases.size(), 10u);  // essentially all distinct
}

// ------------------------------------------------------- SyntheticDataset --

TEST(SyntheticDatasetTest, TinyGeneratesConsistentWorld) {
  auto dataset = SyntheticDataset::Generate(SyntheticConfig::Tiny());
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  const SyntheticDataset& ds = dataset.value();
  EXPECT_EQ(ds.num_users(), 200);
  EXPECT_EQ(ds.num_items(), 100);
  EXPECT_EQ(static_cast<int32_t>(ds.profiles().size()), 200);
  EXPECT_EQ(static_cast<int32_t>(ds.items().size()), 100);
  EXPECT_EQ(ds.user_features().rows(), 200u);
  EXPECT_EQ(ds.item_features().rows(), 100u);
  EXPECT_GT(ds.interactions().size(), 100u);

  for (const auto& interaction : ds.interactions()) {
    EXPECT_GE(interaction.user, 0);
    EXPECT_LT(interaction.user, 200);
    EXPECT_GE(interaction.item, 0);
    EXPECT_LT(interaction.item, 100);
    EXPECT_GE(interaction.day, 0);
    EXPECT_LT(interaction.day, 4);
  }
  for (const auto& item : ds.items()) {
    EXPECT_GE(item.leaf_topic, 0);
    EXPECT_GT(item.price, 0.0f);
    EXPECT_GT(item.popularity, 0.0f);
  }
  for (const auto& prefs : ds.user_prefs()) {
    EXPECT_GE(prefs.size(), 1u);
    float total = 0;
    for (const auto& [leaf, w] : prefs) {
      EXPECT_EQ(ds.tree().node(leaf).level, ds.tree().depth());
      total += w;
    }
    EXPECT_NEAR(total, 1.0f, 1e-4f);
  }
}

TEST(SyntheticDatasetTest, DeterministicForSeed) {
  auto a = SyntheticDataset::Generate(SyntheticConfig::Tiny()).ValueOrDie();
  auto b = SyntheticDataset::Generate(SyntheticConfig::Tiny()).ValueOrDie();
  ASSERT_EQ(a.interactions().size(), b.interactions().size());
  for (size_t k = 0; k < a.interactions().size(); ++k) {
    EXPECT_EQ(a.interactions()[k].user, b.interactions()[k].user);
    EXPECT_EQ(a.interactions()[k].item, b.interactions()[k].item);
    EXPECT_EQ(a.interactions()[k].purchased, b.interactions()[k].purchased);
  }
}

TEST(SyntheticDatasetTest, AffinityHigherForPreferredItems) {
  auto ds = SyntheticDataset::Generate(SyntheticConfig::Tiny()).ValueOrDie();
  double preferred = 0.0;
  int preferred_count = 0;
  double other = 0.0;
  int other_count = 0;
  for (int32_t u = 0; u < ds.num_users(); ++u) {
    std::unordered_set<int32_t> pref_leaves;
    for (const auto& [leaf, w] : ds.user_prefs()[static_cast<size_t>(u)]) {
      (void)w;
      pref_leaves.insert(leaf);
    }
    for (int32_t i = 0; i < ds.num_items(); i += 7) {
      const double affinity = ds.TrueAffinity(u, i);
      if (pref_leaves.count(ds.items()[static_cast<size_t>(i)].leaf_topic)) {
        preferred += affinity;
        ++preferred_count;
      } else {
        other += affinity;
        ++other_count;
      }
    }
  }
  ASSERT_GT(preferred_count, 0);
  ASSERT_GT(other_count, 0);
  EXPECT_GT(preferred / preferred_count, other / other_count + 0.2);
}

TEST(SyntheticDatasetTest, TrainGraphExcludesTestDay) {
  auto ds = SyntheticDataset::Generate(SyntheticConfig::Tiny()).ValueOrDie();
  const BipartiteGraph graph = ds.BuildTrainGraph();
  EXPECT_TRUE(graph.Validate().ok());
  int64_t train_clicks = 0;
  for (const auto& interaction : ds.interactions()) {
    if (interaction.day < ds.num_train_days()) ++train_clicks;
  }
  EXPECT_DOUBLE_EQ(graph.TotalWeight(), static_cast<double>(train_clicks));
  EXPECT_LT(graph.num_edges(), train_clicks + 1);  // duplicates merged
}

TEST(SyntheticDatasetTest, CountersMatchTrainInteractions) {
  auto ds = SyntheticDataset::Generate(SyntheticConfig::Tiny()).ValueOrDie();
  int64_t clicks = 0;
  int64_t buys = 0;
  for (const auto& counters : ds.item_counters()) {
    clicks += counters[0];
    buys += counters[1];
  }
  int64_t expected_clicks = 0;
  int64_t expected_buys = 0;
  for (const auto& interaction : ds.interactions()) {
    if (interaction.day >= ds.num_train_days()) continue;
    ++expected_clicks;
    if (interaction.purchased) ++expected_buys;
  }
  EXPECT_EQ(clicks, expected_clicks);
  EXPECT_EQ(buys, expected_buys);
}

TEST(SyntheticDatasetTest, Taobao2SparserThanTaobao1) {
  SyntheticConfig c1 = SyntheticConfig::Taobao1();
  c1.num_users = 500;
  c1.num_items = 200;
  SyntheticConfig c2 = SyntheticConfig::Taobao2();
  c2.num_users = 500;
  c2.num_items = 200;
  auto d1 = SyntheticDataset::Generate(c1).ValueOrDie();
  auto d2 = SyntheticDataset::Generate(c2).ValueOrDie();
  EXPECT_LT(d2.BuildTrainGraph().Density(), d1.BuildTrainGraph().Density());
}

TEST(SyntheticDatasetTest, RejectsBadConfig) {
  SyntheticConfig config = SyntheticConfig::Tiny();
  config.num_users = 0;
  EXPECT_FALSE(SyntheticDataset::Generate(config).ok());
  config = SyntheticConfig::Tiny();
  config.num_days = 1;
  EXPECT_FALSE(SyntheticDataset::Generate(config).ok());
  config = SyntheticConfig::Tiny();
  config.prefs_per_user = 0;
  EXPECT_FALSE(SyntheticDataset::Generate(config).ok());
}

// ------------------------------------------------------------ BuildSamples --

TEST(BuildSamplesTest, DaySplitIsExact) {
  auto ds = SyntheticDataset::Generate(SyntheticConfig::Tiny()).ValueOrDie();
  const SampleSet samples = BuildSamples(ds, /*replicate=*/false, 1);
  int64_t expected_test = 0;
  int64_t expected_train = 0;
  for (const auto& interaction : ds.interactions()) {
    if (interaction.day < ds.num_train_days()) {
      ++expected_train;
    } else {
      ++expected_test;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(samples.train.size()), expected_train);
  EXPECT_EQ(static_cast<int64_t>(samples.test.size()), expected_test);
  EXPECT_EQ(samples.train_positives + samples.train_negatives,
            expected_train);
}

TEST(BuildSamplesTest, ReplicationReachesOneToThree) {
  SyntheticConfig config = SyntheticConfig::Tiny();
  config.purchase_bias = -4.0;  // few positives -> replication kicks in
  auto ds = SyntheticDataset::Generate(config).ValueOrDie();
  const SampleSet plain = BuildSamples(ds, false, 1);
  const SampleSet replicated = BuildSamples(ds, true, 1);
  ASSERT_GT(plain.train_negatives, plain.train_positives * 3);
  EXPECT_EQ(replicated.train_negatives, plain.train_negatives);
  EXPECT_GE(replicated.train_positives, plain.train_positives);
  EXPECT_GE(replicated.train_positives, replicated.train_negatives / 3);
  // Only positives are replicated.
  for (const auto& sample : replicated.train) {
    EXPECT_TRUE(sample.label == 0.0f || sample.label == 1.0f);
  }
  // Test set untouched.
  EXPECT_EQ(replicated.test.size(), plain.test.size());
}

// ------------------------------------------------------------ QueryDataset --

TEST(QueryDatasetTest, TinyGeneratesConsistentWorld) {
  auto dataset = QueryDataset::Generate(QueryDatasetConfig::Tiny());
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  const QueryDataset& ds = dataset.value();
  EXPECT_EQ(ds.num_queries(), 120);
  EXPECT_EQ(ds.num_items(), 180);
  EXPECT_GT(ds.edges().size(), 100u);
  EXPECT_GT(ds.vocab().size(), 10);

  for (int32_t q = 0; q < ds.num_queries(); ++q) {
    EXPECT_FALSE(ds.query_tokens()[static_cast<size_t>(q)].empty());
    const int32_t topic = ds.query_topic()[static_cast<size_t>(q)];
    EXPECT_GE(ds.tree().node(topic).level, ds.tree().depth() - 1);
  }
  for (int32_t i = 0; i < ds.num_items(); ++i) {
    EXPECT_FALSE(ds.item_tokens()[static_cast<size_t>(i)].empty());
    EXPECT_EQ(ds.tree().node(ds.item_leaf()[static_cast<size_t>(i)]).level,
              ds.tree().depth());
    EXPECT_GE(ds.item_category()[static_cast<size_t>(i)], 0);
    EXPECT_LT(ds.item_category()[static_cast<size_t>(i)],
              ds.config().num_categories);
  }
}

TEST(QueryDatasetTest, EdgesMostlyTopicConsistent) {
  auto ds = QueryDataset::Generate(QueryDatasetConfig::Tiny()).ValueOrDie();
  int64_t consistent = 0;
  for (const auto& edge : ds.edges()) {
    const int32_t topic = ds.query_topic()[static_cast<size_t>(edge.u)];
    const int32_t leaf = ds.item_leaf()[static_cast<size_t>(edge.i)];
    if (ds.tree().IsAncestor(topic, leaf)) ++consistent;
  }
  EXPECT_GT(static_cast<double>(consistent) / ds.edges().size(), 0.8);
}

TEST(QueryDatasetTest, GraphAndCorpus) {
  auto ds = QueryDataset::Generate(QueryDatasetConfig::Tiny()).ValueOrDie();
  const BipartiteGraph graph = ds.BuildGraph();
  EXPECT_TRUE(graph.Validate().ok());
  EXPECT_EQ(graph.num_left(), 120);
  EXPECT_EQ(graph.num_right(), 180);
  const auto corpus = ds.BuildCorpus();
  EXPECT_EQ(corpus.size(),
            ds.item_tokens().size() + ds.query_tokens().size() +
                ds.edges().size());
}

TEST(QueryDatasetTest, TextRendering) {
  auto ds = QueryDataset::Generate(QueryDatasetConfig::Tiny()).ValueOrDie();
  EXPECT_FALSE(ds.QueryText(0).empty());
  EXPECT_FALSE(ds.ItemTitle(0).empty());
}

}  // namespace
}  // namespace hignn
