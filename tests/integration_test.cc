// Cross-module integration tests and remaining edge-case coverage.

#include <gtest/gtest.h>

#include "core/serialization.h"
#include "data/synthetic.h"
#include "eval/ab_test.h"
#include "predict/experiment.h"
#include "sage/bipartite_sage.h"
#include "taxonomy/pipeline.h"

namespace hignn {
namespace {

// --------------------------------------------------------------- A/B sim --

TEST(AbSimulatorPropertyTest, LowerPositionDecayMeansFewerClicks) {
  SyntheticConfig config = SyntheticConfig::Tiny();
  config.num_users = 200;
  config.num_items = 100;
  auto dataset = SyntheticDataset::Generate(config).ValueOrDie();

  auto run_with_decay = [&](double decay) {
    AbTestConfig ab;
    ab.visits_per_day = 1500;
    ab.num_days = 1;
    ab.position_decay = decay;
    AbTestSimulator simulator(&dataset, ab);
    auto days = simulator.Run([](int32_t, int32_t) { return 0.0; });
    return days.ValueOrDie().front().clicks;
  };
  // Steeper decay -> fewer positions examined -> fewer clicks.
  EXPECT_GT(run_with_decay(0.95), run_with_decay(0.5));
}

TEST(AbSimulatorPropertyTest, MoreVisitsMoreImpressions) {
  SyntheticConfig config = SyntheticConfig::Tiny();
  auto dataset = SyntheticDataset::Generate(config).ValueOrDie();
  AbTestConfig ab;
  ab.visits_per_day = 500;
  ab.num_days = 1;
  AbTestSimulator small(&dataset, ab);
  ab.visits_per_day = 1000;
  AbTestSimulator big(&dataset, ab);
  auto scorer = [](int32_t, int32_t) { return 0.0; };
  EXPECT_EQ(small.Run(scorer).ValueOrDie().front().impressions * 2,
            big.Run(scorer).ValueOrDie().front().impressions);
}

// ------------------------------------------------------------ Experiment --

TEST(ExperimentTest, PrepareRejectsDatasetWithNoTestDay) {
  // A dataset with near-zero click rate produces empty sample sets.
  SyntheticConfig config = SyntheticConfig::Tiny();
  config.mean_clicks_per_user_day = 0.0;
  auto dataset = SyntheticDataset::Generate(config).ValueOrDie();
  CvrExperimentConfig experiment_config;
  experiment_config.hignn.levels = 1;
  auto experiment = CvrExperiment::Prepare(dataset, experiment_config);
  EXPECT_FALSE(experiment.ok());
}

// --------------------------------------------------- Sage determinism ----

TEST(SageDeterminismTest, SameSeedSameEmbeddings) {
  auto dataset =
      SyntheticDataset::Generate(SyntheticConfig::Tiny()).ValueOrDie();
  const BipartiteGraph graph = dataset.BuildTrainGraph();
  BipartiteSageConfig config;
  config.dims = {8, 8};
  config.fanouts = {4, 3};
  config.train_steps = 15;

  auto run = [&] {
    auto sage = BipartiteSage::Create(
                    config,
                    static_cast<int32_t>(dataset.user_features().cols()),
                    static_cast<int32_t>(dataset.item_features().cols()))
                    .ValueOrDie();
    HIGNN_CHECK(sage.Train(graph, dataset.user_features(),
                           dataset.item_features())
                    .ok());
    return sage
        .EmbedAll(graph, dataset.user_features(), dataset.item_features())
        .ValueOrDie();
  };
  const SageEmbeddings a = run();
  const SageEmbeddings b = run();
  EXPECT_TRUE(AllClose(a.left, b.left, 0.0f));
  EXPECT_TRUE(AllClose(a.right, b.right, 0.0f));
}

// ------------------------------------------- Full pipeline round trips ----

TEST(FullPipelineTest, FitSaveLoadPredictAgrees) {
  auto dataset =
      SyntheticDataset::Generate(SyntheticConfig::Tiny()).ValueOrDie();
  CvrExperimentConfig config;
  config.hignn.levels = 2;
  config.hignn.sage.dims = {8, 8};
  config.hignn.sage.fanouts = {4, 3};
  config.hignn.sage.train_steps = 15;
  config.hignn.min_clusters = 2;
  config.cvr.hidden = {16};
  config.cvr.epochs = 1;
  auto experiment = CvrExperiment::Prepare(dataset, config).ValueOrDie();

  // Save + reload the hierarchy, rebuild features from the loaded copy,
  // and check feature rows agree exactly with the in-memory model.
  const std::string path =
      std::string(::testing::TempDir()) + "/pipeline_model.hgnn";
  ASSERT_TRUE(SaveHignnModel(experiment.model(), path).ok());
  auto loaded = LoadHignnModel(path).ValueOrDie();

  auto original_features =
      CvrFeatureBuilder::Create(&dataset, &experiment.model(),
                                FeatureSpec::HiGnn(2))
          .ValueOrDie();
  auto loaded_features = CvrFeatureBuilder::Create(&dataset, &loaded,
                                                   FeatureSpec::HiGnn(2))
                             .ValueOrDie();
  const auto& samples = experiment.samples().test;
  const size_t take = std::min<size_t>(samples.size(), 32);
  EXPECT_TRUE(AllClose(original_features.BuildBatch(samples, 0, take),
                       loaded_features.BuildBatch(samples, 0, take), 0.0f));
}

TEST(FullPipelineTest, TaxonomyRunsEndToEndOnGeneratedWorld) {
  auto dataset =
      QueryDataset::Generate(QueryDatasetConfig::Tiny()).ValueOrDie();
  TaxonomyPipelineConfig config;
  config.hignn.levels = 2;
  config.hignn.sage.dims = {8, 8};
  config.hignn.sage.fanouts = {4, 3};
  config.hignn.sage.train_steps = 15;
  config.hignn.min_clusters = 2;
  config.word2vec.dim = 8;
  config.word2vec.epochs = 1;
  config.match_descriptions = true;
  auto run = RunHignnTaxonomy(dataset, config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // Render must work for every top-level topic without crashing.
  const int32_t top = run.value().taxonomy.num_levels() - 1;
  for (int32_t t = 0;
       t < run.value().taxonomy.levels[static_cast<size_t>(top)].num_topics;
       ++t) {
    EXPECT_FALSE(
        RenderTaxonomySubtree(run.value().taxonomy, dataset, top, t).empty());
  }
}

}  // namespace
}  // namespace hignn
