#include "util/logging.h"

#include <gtest/gtest.h>

namespace hignn {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, RespectsMinimumLevel) {
  SetLogLevel(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  HIGNN_LOG(kInfo) << "should be dropped";
  HIGNN_LOG(kWarning) << "should appear";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("should be dropped"), std::string::npos);
  EXPECT_NE(captured.find("should appear"), std::string::npos);
}

TEST_F(LoggingTest, IncludesLevelAndLocation) {
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  HIGNN_LOG(kError) << "boom";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("[ERROR logging_test.cc:"), std::string::npos);
  EXPECT_NE(captured.find("boom"), std::string::npos);
}

TEST_F(LoggingTest, CheckPassesSilently) {
  ::testing::internal::CaptureStderr();
  HIGNN_CHECK_EQ(2 + 2, 4) << "never shown";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(captured.empty());
}

TEST_F(LoggingTest, CheckFailureAborts) {
  EXPECT_DEATH({ HIGNN_CHECK_LT(3, 1) << "impossible"; }, "Check failed");
}

TEST_F(LoggingTest, GetLogLevelRoundTrips) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

}  // namespace
}  // namespace hignn
