// hignn_lint fixture: rule simd-guard. Never compiled — scanned by
// hignn_lint in lint_test.cc, which asserts the exact line numbers below.

void Avx2Sites(const float* x, float* y) {
  __m256 acc;                // line 5: x86 vector type
  _mm256_storeu_ps(y, acc);  // line 6: AVX2 intrinsic
  _mm_loadu_ps(x);           // line 7: SSE intrinsic
}

void NeonSites(const float* x, float* y) {
  float32x4_t v;    // line 11: NEON vector type
  vld1q_f32(x);     // line 12: NEON load
  vst1q_f32(y, v);  // line 13: NEON store
}

int NotViolations(int simd_mm_count) {
  // Mid-identifier stems and comment/string mentions must not fire:
  // _mm256_add_ps and vaddq_f32 in this comment are stripped before scan.
  int my_vld1q = simd_mm_count;       // stem without its trailing underscore
  const char* doc = "_mm256_add_ps";  // string literal, stripped
  return my_vld1q + comm_mm_rate(doc);
}
