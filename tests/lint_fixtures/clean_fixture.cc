// hignn_lint fixture: idiomatic code that every rule should pass without
// any annotation. lint_test.cc asserts exit 0 and "allowed: none".
#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

struct FakePool {
  template <typename F>
  void ParallelForChunks(std::size_t lo, std::size_t hi, std::size_t c, F f) {
    (void)c;
    f(0, lo, hi);
  }
};

double Clean(const std::vector<double>& xs,
             const std::vector<std::pair<int, double>>& sorted_entries) {
  // Lookup-only unordered maps are fine; only iteration is order-sensitive.
  std::unordered_map<int, double> lookup;
  lookup[1] = 2.0;
  double sum = lookup.count(1) != 0 ? lookup[1] : 0.0;

  // Sorted extraction (the util/ordered.h idiom) iterates a vector.
  for (const auto& [key, value] : sorted_entries) {
    (void)key;
    sum += value;
  }

  // Fixed-chunk partials merged in chunk order: the blessed reduction.
  FakePool pool;
  std::vector<double> partials(4, 0.0);
  pool.ParallelForChunks(
      0, xs.size(), 4, [&](std::size_t c, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) partials[c] += xs[i];
      });
  for (double p : partials) sum += p;
  return sum;
}
