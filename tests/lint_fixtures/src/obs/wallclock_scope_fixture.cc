// hignn_lint fixture: the nondet-source wall-clock allowance is scoped to
// src/obs/ (plus bench/ and examples/) — this file sits inside that scope
// (relative to the fixture root), so its WallTimer/steady_clock reads are
// clean with no annotation. The rand() below must STILL be flagged: the
// scope exempts only the wall-clock tokens, never the rest of the
// nondet-source rule. Never compiled — scanned by hignn_lint in
// lint_test.cc.
#include <chrono>
#include <cstdlib>

double ScopedClocks() {
  WallTimer timer;  // in scope: fine without annotation
  using Clock = std::chrono::steady_clock;  // in scope: fine
  return timer.Seconds() * static_cast<double>(Clock::period::den);
}

int StillFlagged() {
  return rand();  // line 18: scope must not leak to entropy sources
}
