// hignn_lint fixture: the raw-write socket allowance is scoped to
// src/serve/ — this file sits inside that scope (relative to the fixture
// root), so its ::write()/::send() calls are clean with no annotation.
// The std::ofstream below must STILL be flagged: the scope exempts only
// the socket tokens, never the rest of the raw-write rule. Never
// compiled — scanned by hignn_lint in lint_test.cc.
#include <fstream>
#include <string>

extern "C" long write(int fd, const void* buf, unsigned long n);
extern "C" long send(int fd, const void* buf, unsigned long n, int flags);

void ScopedSockets(int fd, const char* buf, unsigned long n) {
  ::write(fd, buf, n);  // in scope: fine without annotation
  ::send(fd, buf, n, 0);  // in scope: fine without annotation
}

void StillFlagged(const std::string& path) {
  std::ofstream out(path);  // line 19: scope must not leak to ofstream
  out << "x";
}
