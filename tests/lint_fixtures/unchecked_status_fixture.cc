// Fixture: unchecked-status — discarding the Status/bool return of a
// Load*/Save*/Write* function. The declarations below feed the pass-1
// symbol table; the call sites exercise the pass-2 discard detection.
namespace fixture {

struct Status {
  bool ok() const { return true; }
};

Status SaveBlob(const char* path);
bool LoadFlag(const char* key);
void WriteLog(const char* line);

Status Propagates(const char* path) {
  return SaveBlob(path);  // clean: returned to the caller
}

void Consumes(const char* path) {
  const Status status = SaveBlob(path);  // clean: assigned
  if (!status.ok()) return;
  if (!LoadFlag("feature")) return;  // clean: tested
}

void Discards(const char* path) {
  SaveBlob(path);       // violation: Status discarded
  LoadFlag("feature");  // violation: bool discarded
  WriteLog("message");  // clean: void return, nothing to check
}

void CastAway(const char* path) {
  (void)SaveBlob(path);  // clean: explicit discard
}

void Deliberate(const char* path) {
  // hignn-lint: allow(unchecked-status) best-effort trace write
  SaveBlob(path);
}

}  // namespace fixture
