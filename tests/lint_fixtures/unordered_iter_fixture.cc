// hignn_lint fixture: rule unordered-iter. Never compiled — scanned by
// hignn_lint in lint_test.cc, which asserts the exact line numbers below.
#include <unordered_map>
#include <unordered_set>
#include <vector>

void Violations() {
  std::unordered_map<int, double> counts;
  std::unordered_set<int> seen;
  std::vector<std::unordered_map<int, int>> votes(3);
  for (const auto& [key, value] : counts) {  // line 11: direct map
    (void)key;
    (void)value;
  }
  for (int id : seen) {  // line 15: direct set
    (void)id;
  }
  for (const auto& [k, v] : votes[0]) {  // line 18: element-of-container
    (void)k;
    (void)v;
  }
  const auto& alias = votes[1];
  for (const auto& [k, v] : alias) {  // line 23: auto alias of element
    (void)k;
    (void)v;
  }
}

void NotViolations() {
  std::vector<std::unordered_map<int, int>> votes(3);
  std::vector<int> ordered = {1, 2, 3};
  for (const auto& m : votes) {  // outer vector is ordered: fine
    (void)m;
  }
  for (int x : ordered) {  // plain vector: fine
    (void)x;
  }
  std::unordered_map<int, double> lookup;
  lookup[4] = 2.0;  // point lookups without iteration: fine
}
