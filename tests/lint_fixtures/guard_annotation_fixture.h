// Fixture: guard-annotation — a class holding a mutex must annotate every
// mutable sibling field with HIGNN_GUARDED_BY; const/atomic/CondVar
// members and classes without a mutex stay silent.
#ifndef LINT_FIXTURE_GUARD_ANNOTATION_H_
#define LINT_FIXTURE_GUARD_ANNOTATION_H_

#include <atomic>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fixture {

class Tracker {
 public:
  void Add(double value);  // clean: method declaration, not a field

 private:
  hignn::Mutex mu_;
  hignn::CondVar ready_;                              // clean: cv pairs mu_
  std::vector<double> values_ HIGNN_GUARDED_BY(mu_);  // clean: annotated
  double total_;                                      // violation
  std::string name_;                                  // violation
  const int capacity_ = 8;                            // clean: const
  std::atomic<bool> dirty_{false};                    // clean: atomic
  // hignn-lint: allow(guard-annotation) written only before threads start
  int epoch_ = 0;
};

class Plain {
 private:
  double total_;      // clean: no mutex member in this class
  std::string name_;  // clean: no mutex member in this class
};

}  // namespace fixture

#endif  // LINT_FIXTURE_GUARD_ANNOTATION_H_
