// hignn_lint fixture: rule naked-thread. Never compiled — scanned by
// hignn_lint in lint_test.cc, which asserts the exact line numbers below.
#include <future>
#include <thread>

void Violations(int n) {
  std::thread worker([] {});  // line 7: raw std::thread
  worker.join();
  auto task = std::async([] { return 1; });  // line 9: std::async
  task.get();
#pragma omp parallel for  // line 11: OpenMP scheduling
  for (int i = 0; i < n; ++i) {
  }
}

unsigned NotViolations() {
  // Capacity query, not thread creation: fine.
  return std::thread::hardware_concurrency();
}
