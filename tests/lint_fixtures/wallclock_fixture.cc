// hignn_lint fixture: the nondet-source wall-clock tokens WallTimer and
// steady_clock. Never compiled — scanned by hignn_lint in lint_test.cc,
// which asserts the exact line numbers below.
#include <chrono>

double Violations() {
  WallTimer timer;  // line 7: wall-clock timer read
  using Clock = std::chrono::steady_clock;  // line 8: clock alias
  const auto t0 = std::chrono::steady_clock::now();  // line 9: one finding
  (void)t0;
  return timer.Seconds() + static_cast<double>(Clock::period::den);
}

struct MyWallTimerStats {    // word-embedded token: fine
  int steady_clock_reads = 0;  // word-embedded token: fine
};
