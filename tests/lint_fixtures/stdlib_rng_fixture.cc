// hignn_lint fixture: rule nondet-source, stdlib RNG engines. Never
// compiled — scanned by hignn_lint in lint_test.cc, which asserts the
// exact line numbers below.
#include <random>

unsigned Engines(unsigned seed) {
  std::mt19937 gen32(seed);  // line 7: stdlib engine
  std::mt19937_64 gen64(seed);  // line 8: the 64-bit engine, one finding
  std::minstd_rand lcg(seed);  // line 9: stdlib engine
  std::default_random_engine fallback(seed);  // line 10: stdlib engine
  return static_cast<unsigned>(gen32() + gen64() + lcg() + fallback());
}

unsigned NotViolations(unsigned seed) {
  unsigned mt19937_lookalike = seed;  // joined word: fine
  unsigned operand = seed;  // 'rand' inside 'operand': fine
  return mt19937_lookalike + operand;
}
