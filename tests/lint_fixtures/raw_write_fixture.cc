// hignn_lint fixture: rule raw-write. Never compiled — scanned by
// hignn_lint in lint_test.cc, which asserts the exact line numbers below.
#include <cstdio>
#include <fstream>
#include <string>

void Violations(const std::string& path) {
  std::ofstream out(path);  // line 8: raw ofstream
  out << "hello\n";
  FILE* handle = nullptr;  // line 10: raw FILE* handle
  handle = fopen(path.c_str(), "w");  // line 11: fopen call
  if (handle != nullptr) {
    std::fclose(handle);
  }
}

void NotViolations(const std::string& path) {
  std::ifstream in(path);  // reading is fine; the rule guards writers
  std::string profile = "user profile";  // 'fopen' inside a string: fine
  (void)profile;
}
