// hignn_lint fixture: rule nondet-source. Never compiled — scanned by
// hignn_lint in lint_test.cc, which asserts the exact line numbers below.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned Violations() {
  std::random_device device;  // line 9: hardware entropy
  unsigned value = device() + static_cast<unsigned>(rand());  // line 10: rand
  value += static_cast<unsigned>(time(nullptr));  // line 11: wall clock
  const auto tick = std::chrono::steady_clock::now();  // line 12: ::now()
  (void)tick;
  return value;
}

unsigned NotViolations(unsigned seed) {
  unsigned state = seed;  // deterministic seeding through util/rng: fine
  state = state * 6364136223846793005u + 1442695040888963407u;
  int timeout = 30;  // the word 'time' inside 'timeout': fine
  return state + static_cast<unsigned>(timeout);
}
