// hignn_lint fixture: every rule suppressed via the annotation escape
// hatch. lint_test.cc asserts zero violations and an exact allow tally.
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

struct FakePool {
  template <typename F>
  void ParallelFor(std::size_t lo, std::size_t hi, F f) {
    f(lo, hi);
  }
};

double Suppressed(const std::string& path, const std::vector<double>& xs) {
  std::unordered_map<int, double> counts;
  double sum = 0.0;
  // hignn-lint: allow(unordered-iter) fixture: order-insensitive sum
  for (const auto& [key, value] : counts) {
    (void)key;
    sum += value;
  }
  std::ofstream out(path);  // hignn-lint: allow(raw-write) fixture
  out << sum;
  sum += static_cast<double>(rand());  // hignn-lint: allow(nondet-source) fixture
  std::thread worker([] {});  // hignn-lint: allow(naked-thread) fixture
  worker.join();
  FakePool pool;
  double total = 0.0;
  pool.ParallelFor(0, xs.size(), [&](std::size_t lo, std::size_t hi) {
    // hignn-lint: allow(parallel-float-reduction) fixture
    for (std::size_t i = lo; i < hi; ++i) total += xs[i];
  });
  return sum + total;
}
