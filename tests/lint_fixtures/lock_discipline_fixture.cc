// Fixture: lock-discipline — raw standard lock types, hand-rolled
// lock()/unlock() calls, and blocking work under a MutexLock guard.
#include <chrono>
#include <mutex>
#include <thread>

#include "util/mutex.h"

namespace fixture {

std::mutex g_raw_mu;  // violation: raw std::mutex

void ManualLocking() {
  g_raw_mu.lock();    // violation: manual .lock()
  g_raw_mu.unlock();  // violation: manual .unlock()
}

void RawGuardType() {
  std::lock_guard guard(g_raw_mu);  // violation: raw std::lock_guard
  std::unique_lock probe(g_raw_mu, std::defer_lock);  // violation: raw type
}

hignn::Mutex g_mu;

void BlockingUnderGuard() {
  hignn::MutexLock lock(g_mu);
  // violation: sleeping while the lock is held
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

void BlockingOutsideGuard() {
  {
    hignn::MutexLock lock(g_mu);
  }
  // clean: the guard's scope closed before the sleep
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

// hignn-lint: allow(lock-discipline) fixture exercising the allow escape
std::mutex g_allowed_mu;

}  // namespace fixture
