// hignn_lint fixture: rule parallel-float-reduction. Never compiled —
// scanned by hignn_lint in lint_test.cc, which asserts the lines below.
#include <cstddef>
#include <vector>

struct FakePool {
  template <typename F>
  void ParallelFor(std::size_t lo, std::size_t hi, F f) {
    f(lo, hi);
  }
  template <typename F>
  void ParallelForChunks(std::size_t lo, std::size_t hi, std::size_t c, F f) {
    (void)c;
    f(0, lo, hi);
  }
};

double Violations(const std::vector<double>& xs) {
  FakePool pool;
  double total = 0.0;
  pool.ParallelFor(0, xs.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) total += xs[i];  // line 22
  });
  return total;
}

double NotViolations(const std::vector<double>& xs) {
  FakePool pool;
  std::vector<double> partials(4, 0.0);
  pool.ParallelForChunks(
      0, xs.size(), 4, [&](std::size_t c, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) partials[c] += xs[i];
      });
  double merged = 0.0;
  for (double p : partials) merged += p;  // sequential merge: fine
  return merged;
}
