// Exercises the signal-safety rule: functions installed as signal
// handlers may only set sig_atomic_t / atomic flags. Lines are pinned.

#include <csignal>
#include <cstdio>

volatile std::sig_atomic_t g_stop = 0;
int g_request_count = 0;

void GoodHandler(int) { g_stop = 1; }

void BadHandler(int) {
  g_request_count = 1;
  std::printf("caught signal\n");
}

void UnregisteredLookalike(int) { g_request_count = 2; }

void Install() {
  struct sigaction action = {};
  action.sa_handler = GoodHandler;
  sigaction(SIGTERM, &action, nullptr);
  std::signal(SIGINT, BadHandler);
}
