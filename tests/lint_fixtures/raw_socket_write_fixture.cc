// hignn_lint fixture: raw-write socket tokens OUTSIDE the src/serve/
// scope. Never compiled — scanned by hignn_lint in lint_test.cc, which
// asserts the exact line numbers below.
#include <cstddef>

extern "C" long write(int fd, const void* buf, unsigned long n);
extern "C" long send(int fd, const void* buf, unsigned long n, int flags);

void Violations(int fd, const char* buf, unsigned long n) {
  ::write(fd, buf, n);  // line 10: raw ::write() outside src/serve/
  ::send(fd, buf, n, 0);  // line 11: raw ::send() outside src/serve/
}

struct Framer {
  void send(const char* buf, unsigned long n);
  void write(const char* buf, unsigned long n);
};

void NotViolations(Framer& framer, const char* buf, unsigned long n) {
  framer.send(buf, n);  // member call: fine
  framer.write(buf, n);  // member call: fine
  Framer* pointer = &framer;
  pointer->send(buf, n);  // arrow member call: fine
}
