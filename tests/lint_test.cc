// Fixture tests for the hignn_lint static-analysis binary.
//
// Each fixture under tests/lint_fixtures/ contains known violations at
// pinned line numbers (plus near-miss code that must NOT fire). The tests
// run the real binary via popen and assert its entire stdout byte-for-byte:
// diagnostic lines in `path:line: [rule] message` form, the allow tally,
// and the summary/exit-code contract. This pins both the rule logic and
// the output format that scripts/run_lint.sh and CI parse.
//
// HIGNN_LINT_BIN and HIGNN_LINT_FIXTURE_DIR are injected by CMake.

#include <sys/wait.h>

#include <cstdio>
#include <string>

#include "gtest/gtest.h"

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun RunLint(const std::string& args) {
  const std::string command =
      std::string(HIGNN_LINT_BIN) + " " + args + " 2>&1";
  LintRun run;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return run;
  char buffer[4096];
  size_t got = 0;
  while ((got = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    run.output.append(buffer, got);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

LintRun RunOnFixtures(const std::string& paths) {
  return RunLint("--root " HIGNN_LINT_FIXTURE_DIR " " + paths);
}

TEST(LintTest, UnorderedIterFiresOnEveryPattern) {
  const LintRun run = RunOnFixtures("unordered_iter_fixture.cc");
  EXPECT_EQ(run.exit_code, 1);
  const std::string advice =
      "use an ordered container or util/ordered.h "
      "(SortedEntries/SortedKeys/MaxValueEntry)\n";
  EXPECT_EQ(run.output,
            "unordered_iter_fixture.cc:11: [unordered-iter] range-for over "
            "unordered container 'counts'; " + advice +
            "unordered_iter_fixture.cc:15: [unordered-iter] range-for over "
            "unordered container 'seen'; " + advice +
            "unordered_iter_fixture.cc:18: [unordered-iter] range-for over "
            "unordered container 'votes'; " + advice +
            "unordered_iter_fixture.cc:23: [unordered-iter] range-for over "
            "unordered container 'alias'; " + advice +
            "allowed: none\n"
            "checked 1 files: 4 violation(s)\n");
}

TEST(LintTest, RawWriteFiresOnStreamsHandlesAndFopen) {
  const LintRun run = RunOnFixtures("raw_write_fixture.cc");
  EXPECT_EQ(run.exit_code, 1);
  const std::string advice =
      "outside util/io; use BinaryWriter or AtomicWriteTextFile\n";
  EXPECT_EQ(run.output,
            "raw_write_fixture.cc:8: [raw-write] raw 'std::ofstream' write " +
                advice +
                "raw_write_fixture.cc:10: [raw-write] raw 'FILE*' handle " +
                advice +
                "raw_write_fixture.cc:11: [raw-write] raw 'fopen' write " +
                advice +
                "allowed: none\n"
                "checked 1 files: 3 violation(s)\n");
}

TEST(LintTest, RawSocketWritesFireOutsideTheServeScope) {
  const LintRun run = RunOnFixtures("raw_socket_write_fixture.cc");
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(run.output,
            "raw_socket_write_fixture.cc:10: [raw-write] raw '::write()' "
            "byte output outside the serve wire layer; file IO goes "
            "through util/io, frame IO through src/serve/wire\n"
            "raw_socket_write_fixture.cc:11: [raw-write] raw '::send()' "
            "socket write outside the serve wire layer; frame IO goes "
            "through src/serve/wire\n"
            "allowed: none\n"
            "checked 1 files: 2 violation(s)\n");
}

TEST(LintTest, ServeScopeAllowsSocketsButNothingElseLeaks) {
  // Inside src/serve/ (relative to --root) the socket tokens are exempt
  // with no annotation, but the rest of raw-write stays active: the
  // fixture's std::ofstream must still be the one and only finding.
  const LintRun run = RunOnFixtures("src/serve/socket_scope_fixture.cc");
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(run.output,
            "src/serve/socket_scope_fixture.cc:19: [raw-write] raw "
            "'std::ofstream' write outside util/io; use BinaryWriter or "
            "AtomicWriteTextFile\n"
            "allowed: none\n"
            "checked 1 files: 1 violation(s)\n");
  EXPECT_EQ(run.output.find("socket_scope_fixture.cc:14"),
            std::string::npos);
  EXPECT_EQ(run.output.find("socket_scope_fixture.cc:15"),
            std::string::npos);
}

TEST(LintTest, NondetSourceFiresOnEntropyClockAndNow) {
  const LintRun run = RunOnFixtures("nondet_source_fixture.cc");
  EXPECT_EQ(run.exit_code, 1);
  const std::string advice =
      "is a nondeterministic source; use util/rng.h for randomness and "
      "util/timer.h for timing\n";
  EXPECT_EQ(run.output,
            "nondet_source_fixture.cc:9: [nondet-source] "
            "'std::random_device' is nondeterministic; seed a util/rng.h "
            "Rng explicitly\n"
            "nondet_source_fixture.cc:10: [nondet-source] 'rand()' " + advice +
            "nondet_source_fixture.cc:11: [nondet-source] 'time()' " + advice +
            "nondet_source_fixture.cc:12: [nondet-source] clock '::now()' "
            "outside util/timer.h; use WallTimer so time never feeds "
            "deterministic state\n"
            "allowed: none\n"
            "checked 1 files: 4 violation(s)\n");
}

TEST(LintTest, StdlibRngEnginesFireAsSecondSeedUniverses) {
  const LintRun run = RunOnFixtures("stdlib_rng_fixture.cc");
  EXPECT_EQ(run.exit_code, 1);
  const std::string advice =
      "' bypasses the audited seed path; draw from a util/rng.h Rng "
      "instead\n";
  EXPECT_EQ(run.output,
            "stdlib_rng_fixture.cc:7: [nondet-source] stdlib RNG engine "
            "'std::mt19937" + advice +
            "stdlib_rng_fixture.cc:8: [nondet-source] stdlib RNG engine "
            "'std::mt19937_64" + advice +
            "stdlib_rng_fixture.cc:9: [nondet-source] stdlib RNG engine "
            "'std::minstd_rand" + advice +
            "stdlib_rng_fixture.cc:10: [nondet-source] stdlib RNG engine "
            "'std::default_random_engine" + advice +
            "allowed: none\n"
            "checked 1 files: 4 violation(s)\n");
  // The joined words on lines 15-16 stay silent.
  EXPECT_EQ(run.output.find("stdlib_rng_fixture.cc:15"), std::string::npos);
  EXPECT_EQ(run.output.find("stdlib_rng_fixture.cc:16"), std::string::npos);
}

TEST(LintTest, WallClockTokensFireOutsideTheObsScope) {
  const LintRun run = RunOnFixtures("wallclock_fixture.cc");
  EXPECT_EQ(run.exit_code, 1);
  const std::string advice =
      "outside the telemetry layer; measure via obs::Stopwatch (src/obs/) "
      "so timing stays observation-only\n";
  EXPECT_EQ(run.output,
            "wallclock_fixture.cc:7: [nondet-source] wall-clock "
            "'WallTimer' read " + advice +
            "wallclock_fixture.cc:8: [nondet-source] wall-clock "
            "'steady_clock' use " + advice +
            // `steady_clock::now()` on line 9 yields exactly one finding:
            // the ::now() diagnostic, not a second steady_clock one.
            "wallclock_fixture.cc:9: [nondet-source] clock '::now()' "
            "outside util/timer.h; use WallTimer so time never feeds "
            "deterministic state\n"
            "allowed: none\n"
            "checked 1 files: 3 violation(s)\n");
}

TEST(LintTest, ObsScopeAllowsWallClocksButNothingElseLeaks) {
  // Inside src/obs/ (relative to --root) the wall-clock tokens are exempt
  // wholesale; the rest of nondet-source stays active.
  const LintRun run = RunOnFixtures("src/obs/wallclock_scope_fixture.cc");
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(run.output,
            "src/obs/wallclock_scope_fixture.cc:18: [nondet-source] "
            "'rand()' is a nondeterministic source; use util/rng.h for "
            "randomness and util/timer.h for timing\n"
            "allowed: none\n"
            "checked 1 files: 1 violation(s)\n");
  EXPECT_EQ(run.output.find("wallclock_scope_fixture.cc:12"),
            std::string::npos);
  EXPECT_EQ(run.output.find("wallclock_scope_fixture.cc:13"),
            std::string::npos);
}

TEST(LintTest, NakedThreadFiresOnThreadAsyncAndOmp) {
  const LintRun run = RunOnFixtures("naked_thread_fixture.cc");
  EXPECT_EQ(run.exit_code, 1);
  const std::string advice =
      "outside util/thread_pool; submit work to GlobalThreadPool() "
      "instead\n";
  EXPECT_EQ(run.output,
            "naked_thread_fixture.cc:7: [naked-thread] raw 'std::thread' " +
                advice +
                "naked_thread_fixture.cc:9: [naked-thread] raw "
                "'std::async' " + advice +
                "naked_thread_fixture.cc:11: [naked-thread] '#pragma omp' "
                "outside util/thread_pool; OpenMP scheduling is not "
                "deterministic — use ParallelForChunks\n"
                "allowed: none\n"
                "checked 1 files: 3 violation(s)\n");
}

TEST(LintTest, ParallelFloatReductionFiresInsideParallelForOnly) {
  const LintRun run = RunOnFixtures("float_reduction_fixture.cc");
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(run.output,
            "float_reduction_fixture.cc:22: [parallel-float-reduction] "
            "floating-point accumulation into 'total' inside a ParallelFor "
            "body; use ParallelForChunks with a fixed-order merge\n"
            "allowed: none\n"
            "checked 1 files: 1 violation(s)\n");
}

TEST(LintTest, SimdGuardFiresOnIntrinsicsAndVectorTypes) {
  const LintRun run = RunOnFixtures("simd_guard_fixture.cc");
  EXPECT_EQ(run.exit_code, 1);
  const std::string advice =
      "outside the nn/simd dispatch shim; vector code lives in "
      "src/nn/simd.h and the simd_*.cc ISA tables\n";
  EXPECT_EQ(run.output,
            "simd_guard_fixture.cc:5: [simd-guard] raw SIMD token "
            "'__m256' " + advice +
            "simd_guard_fixture.cc:6: [simd-guard] raw SIMD token "
            "'_mm256_storeu_ps' " + advice +
            "simd_guard_fixture.cc:7: [simd-guard] raw SIMD token "
            "'_mm_loadu_ps' " + advice +
            "simd_guard_fixture.cc:11: [simd-guard] raw SIMD token "
            "'float32x4_t' " + advice +
            "simd_guard_fixture.cc:12: [simd-guard] raw SIMD token "
            "'vld1q_f32' " + advice +
            "simd_guard_fixture.cc:13: [simd-guard] raw SIMD token "
            "'vst1q_f32' " + advice +
            "allowed: none\n"
            "checked 1 files: 6 violation(s)\n");
}

TEST(LintTest, SignalSafetyFiresOnlyInsideRegisteredHandlers) {
  const LintRun run = RunOnFixtures("signal_safety_fixture.cc");
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(run.output,
            "signal_safety_fixture.cc:13: [signal-safety] signal handler "
            "'BadHandler' writes 'g_request_count', which is not a "
            "volatile std::sig_atomic_t or std::atomic; handlers may only "
            "set such flags\n"
            "signal_safety_fixture.cc:14: [signal-safety] call to 'printf' "
            "inside signal handler 'BadHandler' is async-signal-unsafe; "
            "set a volatile std::sig_atomic_t flag and do the work in the "
            "main loop\n"
            "allowed: none\n"
            "checked 1 files: 2 violation(s)\n");
  // The flag-setting handler and the never-registered lookalike both
  // stay silent.
  EXPECT_EQ(run.output.find("GoodHandler"), std::string::npos);
  EXPECT_EQ(run.output.find("UnregisteredLookalike"), std::string::npos);
}

TEST(LintTest, LockDisciplineFiresOnRawTypesManualCallsAndBlockedGuards) {
  const LintRun run = RunOnFixtures("lock_discipline_fixture.cc");
  EXPECT_EQ(run.exit_code, 1);
  const std::string type_advice =
      "outside util/mutex.h; use the annotated hignn::Mutex / MutexLock / "
      "CondVar shim so -Wthread-safety sees the critical section\n";
  const std::string call_advice =
      "call; critical sections are scoped MutexLock blocks (util/mutex.h), "
      "never hand-rolled lock/unlock pairs\n";
  EXPECT_EQ(run.output,
            "lock_discipline_fixture.cc:11: [lock-discipline] raw "
            "'std::mutex' " + type_advice +
            "lock_discipline_fixture.cc:14: [lock-discipline] manual "
            "'lock()' " + call_advice +
            "lock_discipline_fixture.cc:15: [lock-discipline] manual "
            "'unlock()' " + call_advice +
            "lock_discipline_fixture.cc:19: [lock-discipline] raw "
            "'std::lock_guard' " + type_advice +
            "lock_discipline_fixture.cc:20: [lock-discipline] raw "
            "'std::unique_lock' " + type_advice +
            "lock_discipline_fixture.cc:28: [lock-discipline] blocking "
            "call 'sleep_for' while MutexLock 'lock' is in scope; shrink "
            "the critical section — do slow work outside the lock\n"
            "allowed: lock-discipline=1 (1 total)\n"
            "checked 1 files: 6 violation(s)\n");
  // The sleep after the guard's scope closed (line 35) stays silent, as
  // does the MutexLock declaration itself.
  EXPECT_EQ(run.output.find("lock_discipline_fixture.cc:35"),
            std::string::npos);
}

TEST(LintTest, GuardAnnotationFlagsUnguardedFieldsInMutexClassesOnly) {
  const LintRun run = RunOnFixtures("guard_annotation_fixture.h");
  EXPECT_EQ(run.exit_code, 1);
  const std::string advice =
      "lacks HIGNN_GUARDED_BY(...); name its lock, or make the field "
      "const/atomic, or allow with a justification\n";
  EXPECT_EQ(run.output,
            "guard_annotation_fixture.h:24: [guard-annotation] field "
            "'total_' in mutex-holding class 'Tracker' " + advice +
            "guard_annotation_fixture.h:25: [guard-annotation] field "
            "'name_' in mutex-holding class 'Tracker' " + advice +
            "allowed: guard-annotation=1 (1 total)\n"
            "checked 1 files: 2 violation(s)\n");
  // The annotated/const/atomic/CondVar members and the mutex-free class
  // 'Plain' stay silent.
  EXPECT_EQ(run.output.find("'Plain'"), std::string::npos);
  EXPECT_EQ(run.output.find("values_"), std::string::npos);
  EXPECT_EQ(run.output.find("capacity_"), std::string::npos);
}

TEST(LintTest, UncheckedStatusFlagsDiscardedReturnsViaTheSymbolTable) {
  const LintRun run = RunOnFixtures("unchecked_status_fixture.cc");
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(run.output,
            "unchecked_status_fixture.cc:25: [unchecked-status] result of "
            "'SaveBlob' (Status) is discarded; propagate it, or spell a "
            "deliberate best-effort write as (void)SaveBlob(...) under an "
            "allow\n"
            "unchecked_status_fixture.cc:26: [unchecked-status] result of "
            "'LoadFlag' (bool) is discarded; propagate it, or spell a "
            "deliberate best-effort write as (void)LoadFlag(...) under an "
            "allow\n"
            "allowed: unchecked-status=1 (1 total)\n"
            "checked 1 files: 2 violation(s)\n");
  // void-returning WriteLog, the returned/assigned/tested call sites and
  // the (void) cast all stay silent.
  EXPECT_EQ(run.output.find("WriteLog"), std::string::npos);
  EXPECT_EQ(run.output.find("fixture.cc:15"), std::string::npos);
  EXPECT_EQ(run.output.find("fixture.cc:31"), std::string::npos);
}

TEST(LintTest, AllowReportEmitsAMachineReadableInventory) {
  const LintRun run = RunLint(
      "--root " HIGNN_LINT_FIXTURE_DIR
      " --allow-report guard_annotation_fixture.h "
      "unchecked_status_fixture.cc");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.output,
            "{\n"
            "  \"allows\": [\n"
            "    {\"rule\": \"guard-annotation\", \"file\": "
            "\"guard_annotation_fixture.h\", \"line\": 28, "
            "\"justification\": \"written only before threads start\"},\n"
            "    {\"rule\": \"unchecked-status\", \"file\": "
            "\"unchecked_status_fixture.cc\", \"line\": 35, "
            "\"justification\": \"best-effort trace write\"}\n"
            "  ],\n"
            "  \"total\": 2\n"
            "}\n");
}

TEST(LintTest, AllowReportOnACleanFileIsAnEmptyInventory) {
  const LintRun run =
      RunLint("--root " HIGNN_LINT_FIXTURE_DIR
              " --allow-report clean_fixture.cc");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.output,
            "{\n"
            "  \"allows\": [],\n"
            "  \"total\": 0\n"
            "}\n");
}

TEST(LintTest, AllowAnnotationSuppressesEveryRuleAndIsTallied) {
  const LintRun run = RunOnFixtures("allowed_fixture.cc");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.output,
            "allowed: naked-thread=1 nondet-source=1 "
            "parallel-float-reduction=1 raw-write=1 unordered-iter=1 "
            "(5 total)\n"
            "checked 1 files: 0 violation(s)\n");
}

TEST(LintTest, CleanIdiomaticCodePassesWithoutAnnotations) {
  const LintRun run = RunOnFixtures("clean_fixture.cc");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.output,
            "allowed: none\n"
            "checked 1 files: 0 violation(s)\n");
}

TEST(LintTest, DirectoryScanAggregatesAndSortsAcrossFiles) {
  const LintRun run = RunOnFixtures(".");
  EXPECT_EQ(run.exit_code, 1);
  // 4 + 3 + 4 + 3 + 3 + 1 + 6 + 2 + 2 + 1 + 1 pinned violations across
  // the eleven original violating fixtures plus 6 + 2 + 2 from the
  // lock-discipline, guard-annotation and unchecked-status fixtures and
  // 4 from the stdlib-RNG fixture; the allowed fixture contributes 5
  // tallied suppressions and each new fixture one more.
  EXPECT_NE(run.output.find("checked 17 files: 44 violation(s)\n"),
            std::string::npos);
  // Diagnostics are sorted by path, so the float-reduction fixture's
  // single finding leads the report.
  EXPECT_EQ(run.output.rfind("float_reduction_fixture.cc:22:", 0), 0u);
  EXPECT_NE(run.output.find("allowed: guard-annotation=1 lock-discipline=1 "
                            "naked-thread=1 nondet-source=1 "
                            "parallel-float-reduction=1 raw-write=1 "
                            "unchecked-status=1 unordered-iter=1 "
                            "(8 total)\n"),
            std::string::npos);
}

TEST(LintTest, ListRulesPrintsTheCatalog) {
  const LintRun run = RunLint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* rule :
       {"unordered-iter", "raw-write", "nondet-source", "naked-thread",
        "parallel-float-reduction", "simd-guard", "signal-safety",
        "lock-discipline", "guard-annotation", "unchecked-status"}) {
    EXPECT_NE(run.output.find(rule), std::string::npos)
        << "missing rule id: " << rule;
  }
}

TEST(LintTest, MissingPathIsAUsageError) {
  const LintRun run = RunOnFixtures("no_such_fixture.cc");
  EXPECT_EQ(run.exit_code, 2);
}

}  // namespace
