#include "core/serialization.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "util/rng.h"

namespace hignn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializationTest, MatrixRoundTrip) {
  Rng rng(3);
  Matrix original(7, 5);
  original.FillNormal(rng);
  const std::string path = TempPath("matrix.bin");
  ASSERT_TRUE(SaveMatrix(original, path).ok());
  auto loaded = LoadMatrix(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(AllClose(loaded.value(), original, 0.0f));
}

TEST(SerializationTest, EmptyMatrixRoundTrip) {
  const std::string path = TempPath("empty_matrix.bin");
  ASSERT_TRUE(SaveMatrix(Matrix(), path).ok());
  auto loaded = LoadMatrix(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().rows(), 0u);
  EXPECT_EQ(loaded.value().cols(), 0u);
}

TEST(SerializationTest, GraphRoundTrip) {
  BipartiteGraphBuilder builder(4, 5);
  ASSERT_TRUE(builder.AddEdge(0, 1, 2.5f).ok());
  ASSERT_TRUE(builder.AddEdge(3, 4, 1.0f).ok());
  ASSERT_TRUE(builder.AddEdge(1, 0, 0.5f).ok());
  const BipartiteGraph original = builder.Build();

  const std::string path = TempPath("graph.bin");
  ASSERT_TRUE(SaveBipartiteGraph(original, path).ok());
  auto loaded = LoadBipartiteGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_left(), 4);
  EXPECT_EQ(loaded.value().num_right(), 5);
  EXPECT_EQ(loaded.value().num_edges(), 3);
  EXPECT_DOUBLE_EQ(loaded.value().TotalWeight(), original.TotalWeight());
  EXPECT_TRUE(loaded.value().Validate().ok());
}

TEST(SerializationTest, HignnModelRoundTrip) {
  // Build a small real model so all fields are exercised.
  auto dataset =
      SyntheticDataset::Generate(SyntheticConfig::Tiny()).ValueOrDie();
  HignnConfig config;
  config.levels = 2;
  config.sage.dims = {8, 8};
  config.sage.fanouts = {4, 3};
  config.sage.train_steps = 10;
  config.min_clusters = 2;
  auto model = Hignn::Fit(dataset.BuildTrainGraph(), dataset.user_features(),
                          dataset.item_features(), config)
                   .ValueOrDie();

  const std::string path = TempPath("model.hgnn");
  ASSERT_TRUE(SaveHignnModel(model, path).ok());
  auto loaded = LoadHignnModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded.value().num_levels(), model.num_levels());
  EXPECT_EQ(loaded.value().level_dim(), model.level_dim());
  EXPECT_TRUE(AllClose(loaded.value().AllHierarchicalLeft(),
                       model.AllHierarchicalLeft(), 0.0f));
  EXPECT_TRUE(AllClose(loaded.value().AllHierarchicalRight(),
                       model.AllHierarchicalRight(), 0.0f));
  for (int32_t u = 0; u < dataset.num_users(); u += 37) {
    EXPECT_EQ(loaded.value().LeftClusterAt(u, 2), model.LeftClusterAt(u, 2));
  }
}

TEST(SerializationTest, RejectsWrongTag) {
  Rng rng(5);
  Matrix m(2, 2);
  m.FillNormal(rng);
  const std::string path = TempPath("tagged.bin");
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  EXPECT_FALSE(LoadBipartiteGraph(path).ok());  // matrix tag != graph tag
  EXPECT_FALSE(LoadHignnModel(path).ok());
}

TEST(SerializationTest, RejectsGarbageAndMissingFiles) {
  EXPECT_FALSE(LoadMatrix(TempPath("does_not_exist.bin")).ok());
  const std::string path = TempPath("garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a hignn artifact";
  }
  EXPECT_FALSE(LoadMatrix(path).ok());
}

TEST(SerializationTest, RejectsTruncatedFile) {
  Rng rng(7);
  Matrix m(30, 30);
  m.FillNormal(rng);
  const std::string path = TempPath("full.bin");
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  // Truncate to half.
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  const std::string cut = TempPath("truncated.bin");
  {
    std::ofstream out(cut, std::ios::binary);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() / 2));
  }
  EXPECT_FALSE(LoadMatrix(cut).ok());
}

TEST(SerializationTest, TsvRoundTrip) {
  BipartiteGraphBuilder builder(3, 3);
  ASSERT_TRUE(builder.AddEdge(0, 2, 1.5f).ok());
  ASSERT_TRUE(builder.AddEdge(2, 0, 3.0f).ok());
  const BipartiteGraph original = builder.Build();
  const std::string path = TempPath("graph.tsv");
  ASSERT_TRUE(SaveBipartiteGraphTsv(original, path).ok());
  auto loaded = LoadBipartiteGraphTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_edges(), 2);
  EXPECT_DOUBLE_EQ(loaded.value().TotalWeight(), 4.5);
}

TEST(SerializationTest, TsvParsesCommentsAndDefaults) {
  const std::string path = TempPath("hand.tsv");
  {
    std::ofstream out(path);
    out << "# comment line\n";
    out << "0\t1\n";          // default weight 1
    out << "  2\t0\t2.5  \n";  // padded
    out << "\n";               // blank
  }
  auto loaded = LoadBipartiteGraphTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_left(), 3);
  EXPECT_EQ(loaded.value().num_right(), 2);
  EXPECT_DOUBLE_EQ(loaded.value().TotalWeight(), 3.5);
  // Explicit vertex counts override inference.
  auto padded = LoadBipartiteGraphTsv(path, 10, 10);
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(padded.value().num_left(), 10);
}

TEST(SerializationTest, TsvRejectsMalformedLines) {
  const std::string path = TempPath("bad.tsv");
  {
    std::ofstream out(path);
    out << "0\tnot_a_number\n";
  }
  EXPECT_FALSE(LoadBipartiteGraphTsv(path).ok());
  {
    std::ofstream out(path);
    out << "0\t1\t2\t3\n";  // too many fields
  }
  EXPECT_FALSE(LoadBipartiteGraphTsv(path).ok());
  {
    std::ofstream out(path);
    out << "-1\t0\n";  // negative id
  }
  EXPECT_FALSE(LoadBipartiteGraphTsv(path).ok());
}

TEST(SerializationTest, TsvRejectsPartialNumbersAndBadWeights) {
  const std::string path = TempPath("bad_fields.tsv");
  const char* bad_lines[] = {
      "12abc\t0\n",      // trailing garbage in an id
      "0\t3.5\n",        // fractional id
      "0\t1\t2.5xyz\n",  // trailing garbage in a weight
      "0\t1\tnan\n",     // non-finite weight
      "0\t1\tinf\n",     // non-finite weight
      "0\t1\t-2.0\n",    // negative weight
  };
  for (const char* line : bad_lines) {
    SCOPED_TRACE(line);
    {
      std::ofstream out(path);
      out << "0\t0\t1.0\n" << line;  // valid first line, bad second
    }
    auto loaded = LoadBipartiteGraphTsv(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
    // The error pinpoints the offending line.
    EXPECT_NE(loaded.status().ToString().find(":2"), std::string::npos)
        << loaded.status().ToString();
  }
}

}  // namespace
}  // namespace hignn
