#include "graph/bipartite_graph.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/coarsen.h"
#include "graph/sampling.h"
#include "util/rng.h"

namespace hignn {
namespace {

BipartiteGraph SmallGraph() {
  // Users 0..2, items 0..3.
  BipartiteGraphBuilder builder(3, 4);
  EXPECT_TRUE(builder.AddEdge(0, 0, 1.0f).ok());
  EXPECT_TRUE(builder.AddEdge(0, 1, 2.0f).ok());
  EXPECT_TRUE(builder.AddEdge(1, 1, 1.0f).ok());
  EXPECT_TRUE(builder.AddEdge(1, 2, 4.0f).ok());
  EXPECT_TRUE(builder.AddEdge(2, 3, 0.5f).ok());
  return builder.Build();
}

TEST(BipartiteGraphTest, BasicCounts) {
  BipartiteGraph g = SmallGraph();
  EXPECT_EQ(g.num_left(), 3);
  EXPECT_EQ(g.num_right(), 4);
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_DOUBLE_EQ(g.Density(), 5.0 / 12.0);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 8.5);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(BipartiteGraphTest, NeighborSpans) {
  BipartiteGraph g = SmallGraph();
  const auto u0 = g.LeftNeighbors(0);
  ASSERT_EQ(u0.size, 2u);
  EXPECT_EQ(u0.ids[0], 0);
  EXPECT_EQ(u0.ids[1], 1);
  EXPECT_FLOAT_EQ(u0.weights[1], 2.0f);

  const auto i1 = g.RightNeighbors(1);
  ASSERT_EQ(i1.size, 2u);
  std::set<int32_t> left(i1.begin(), i1.end());
  EXPECT_EQ(left, (std::set<int32_t>{0, 1}));
  EXPECT_EQ(g.LeftDegree(2), 1);
  EXPECT_EQ(g.RightDegree(3), 1);
}

TEST(BipartiteGraphTest, DuplicateEdgesAccumulate) {
  BipartiteGraphBuilder builder(1, 1);
  ASSERT_TRUE(builder.AddEdge(0, 0, 1.0f).ok());
  ASSERT_TRUE(builder.AddEdge(0, 0, 2.5f).ok());
  BipartiteGraph g = builder.Build();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_FLOAT_EQ(g.LeftNeighbors(0).weights[0], 3.5f);
}

TEST(BipartiteGraphTest, BuilderRejectsBadInput) {
  BipartiteGraphBuilder builder(2, 2);
  EXPECT_EQ(builder.AddEdge(-1, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.AddEdge(2, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.AddEdge(0, 5).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.AddEdge(0, 0, 0.0f).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.AddEdge(0, 0, -1.0f).code(),
            StatusCode::kInvalidArgument);
}

TEST(BipartiteGraphTest, EdgesRoundTrip) {
  BipartiteGraph g = SmallGraph();
  const auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 5u);
  // Left-major order.
  EXPECT_EQ(edges[0].u, 0);
  EXPECT_EQ(edges[4].u, 2);
  double total = 0;
  for (const auto& e : edges) total += e.weight;
  EXPECT_DOUBLE_EQ(total, 8.5);
}

TEST(BipartiteGraphTest, EdgeAtMatchesEdges) {
  BipartiteGraph g = SmallGraph();
  const auto edges = g.Edges();
  for (int64_t k = 0; k < g.num_edges(); ++k) {
    const WeightedEdge e = g.EdgeAt(k);
    EXPECT_EQ(e.u, edges[static_cast<size_t>(k)].u);
    EXPECT_EQ(e.i, edges[static_cast<size_t>(k)].i);
    EXPECT_FLOAT_EQ(e.weight, edges[static_cast<size_t>(k)].weight);
  }
}

TEST(BipartiteGraphTest, EdgeAtWithIsolatedVertices) {
  BipartiteGraphBuilder builder(5, 5);
  ASSERT_TRUE(builder.AddEdge(4, 4, 1.0f).ok());  // Vertices 0..3 isolated.
  BipartiteGraph g = builder.Build();
  const WeightedEdge e = g.EdgeAt(0);
  EXPECT_EQ(e.u, 4);
  EXPECT_EQ(e.i, 4);
}

TEST(BipartiteGraphTest, WeightedDegrees) {
  BipartiteGraph g = SmallGraph();
  EXPECT_DOUBLE_EQ(g.LeftWeightedDegree(0), 3.0);
  EXPECT_DOUBLE_EQ(g.RightWeightedDegree(1), 3.0);
}

TEST(BipartiteGraphTest, EmptyGraph) {
  BipartiteGraphBuilder builder(0, 0);
  BipartiteGraph g = builder.Build();
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_DOUBLE_EQ(g.Density(), 0.0);
  EXPECT_TRUE(g.Validate().ok());
}

// ------------------------------------------------------------- Sampling --

TEST(NeighborSamplerTest, FullNeighborhoodWhenDegreeSmall) {
  BipartiteGraph g = SmallGraph();
  NeighborSampler sampler(g);
  Rng rng(1);
  const auto nbrs = sampler.Sample(Side::kLeft, 0, 10, rng);
  EXPECT_EQ(nbrs, (std::vector<int32_t>{0, 1}));
}

TEST(NeighborSamplerTest, FanoutCapsSamples) {
  BipartiteGraphBuilder builder(1, 100);
  for (int32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(builder.AddEdge(0, i).ok());
  }
  BipartiteGraph g = builder.Build();
  NeighborSampler sampler(g);
  Rng rng(2);
  const auto nbrs = sampler.Sample(Side::kLeft, 0, 7, rng);
  EXPECT_EQ(nbrs.size(), 7u);
  for (int32_t n : nbrs) {
    EXPECT_GE(n, 0);
    EXPECT_LT(n, 100);
  }
}

TEST(NeighborSamplerTest, IsolatedVertexEmpty) {
  BipartiteGraphBuilder builder(2, 2);
  ASSERT_TRUE(builder.AddEdge(0, 0).ok());
  BipartiteGraph g = builder.Build();
  NeighborSampler sampler(g);
  Rng rng(3);
  EXPECT_TRUE(sampler.Sample(Side::kLeft, 1, 5, rng).empty());
  EXPECT_TRUE(sampler.Sample(Side::kRight, 1, 5, rng).empty());
}

TEST(NeighborSamplerTest, WeightedSamplingFavorsHeavyEdges) {
  BipartiteGraphBuilder builder(1, 3);
  ASSERT_TRUE(builder.AddEdge(0, 0, 1.0f).ok());
  ASSERT_TRUE(builder.AddEdge(0, 1, 1.0f).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2, 98.0f).ok());
  BipartiteGraph g = builder.Build();
  NeighborSampler sampler(g, /*weighted=*/true);
  Rng rng(4);
  int heavy = 0;
  const int draws = 3000;
  for (int k = 0; k < draws; ++k) {
    // Force subsampling with fanout 1 (< degree 3).
    const auto nbrs = sampler.Sample(Side::kLeft, 0, 1, rng);
    ASSERT_EQ(nbrs.size(), 1u);
    if (nbrs[0] == 2) ++heavy;
  }
  EXPECT_GT(heavy, draws * 9 / 10);
}

TEST(NeighborSamplerTest, BatchAlignsWithInputs) {
  BipartiteGraph g = SmallGraph();
  NeighborSampler sampler(g);
  Rng rng(5);
  const auto batches = sampler.SampleBatch(Side::kLeft, {2, 0}, 10, rng);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0], (std::vector<int32_t>{3}));
  EXPECT_EQ(batches[1], (std::vector<int32_t>{0, 1}));
}

TEST(NegativeSamplerTest, AvoidsTrueEdges) {
  // User 0 connects to all items except item 3.
  BipartiteGraphBuilder builder(2, 4);
  for (int32_t i = 0; i < 3; ++i) ASSERT_TRUE(builder.AddEdge(0, i).ok());
  ASSERT_TRUE(builder.AddEdge(1, 3).ok());
  BipartiteGraph g = builder.Build();
  NegativeSampler sampler(g);
  Rng rng(6);
  for (int k = 0; k < 200; ++k) {
    EXPECT_EQ(sampler.SampleRightFor(0, rng, 64), 3);
  }
}

TEST(NegativeSamplerTest, LeftNegativesAvoidEdges) {
  BipartiteGraphBuilder builder(4, 2);
  for (int32_t u = 0; u < 3; ++u) ASSERT_TRUE(builder.AddEdge(u, 0).ok());
  ASSERT_TRUE(builder.AddEdge(3, 1).ok());
  BipartiteGraph g = builder.Build();
  NegativeSampler sampler(g);
  Rng rng(7);
  for (int k = 0; k < 200; ++k) {
    EXPECT_EQ(sampler.SampleLeftFor(0, rng, 64), 3);
  }
}

// -------------------------------------------------------------- Coarsen --

TEST(CoarsenTest, SumsEdgeWeightsPerEq6) {
  // Users {0,1} -> cluster 0, user {2} -> cluster 1.
  // Items {0,1} -> cluster 0, items {2,3} -> cluster 1.
  BipartiteGraph g = SmallGraph();
  Matrix left_emb(3, 2, {1, 0, 3, 0, 0, 5});
  Matrix right_emb(4, 2, {1, 1, 2, 2, 3, 3, 4, 4});
  auto result = CoarsenBipartiteGraph(g, left_emb, right_emb, {0, 0, 1}, 2,
                                      {0, 0, 1, 1}, 2);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const CoarsenedGraph& coarse = result.value();
  EXPECT_EQ(coarse.graph.num_left(), 2);
  EXPECT_EQ(coarse.graph.num_right(), 2);
  EXPECT_TRUE(coarse.graph.Validate().ok());

  // S(C_u0, C_i0) = e(0,0)+e(0,1)+e(1,1) = 1+2+1 = 4.
  auto span = coarse.graph.LeftNeighbors(0);
  double weight_00 = 0;
  double weight_01 = 0;
  for (size_t k = 0; k < span.size; ++k) {
    if (span.ids[k] == 0) weight_00 = span.weights[k];
    if (span.ids[k] == 1) weight_01 = span.weights[k];
  }
  EXPECT_DOUBLE_EQ(weight_00, 4.0);
  // S(C_u0, C_i1) = e(1,2) = 4.
  EXPECT_DOUBLE_EQ(weight_01, 4.0);
  // S(C_u1, C_i1) = e(2,3) = 0.5; no edge (C_u1, C_i0).
  EXPECT_EQ(coarse.graph.LeftDegree(1), 1);
  EXPECT_FLOAT_EQ(coarse.graph.LeftNeighbors(1).weights[0], 0.5f);
}

TEST(CoarsenTest, ClusterFeaturesAreMeans) {
  BipartiteGraph g = SmallGraph();
  Matrix left_emb(3, 2, {1, 0, 3, 0, 0, 5});
  Matrix right_emb(4, 2, {1, 1, 2, 2, 3, 3, 4, 4});
  auto result = CoarsenBipartiteGraph(g, left_emb, right_emb, {0, 0, 1}, 2,
                                      {0, 0, 1, 1}, 2);
  ASSERT_TRUE(result.ok());
  const Matrix& lf = result.value().left_features;
  EXPECT_FLOAT_EQ(lf(0, 0), 2.0f);  // mean(1, 3)
  EXPECT_FLOAT_EQ(lf(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(lf(1, 1), 5.0f);
  const Matrix& rf = result.value().right_features;
  EXPECT_FLOAT_EQ(rf(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(rf(1, 0), 3.5f);
}

TEST(CoarsenTest, EmptyClusterGetsZeroFeature) {
  BipartiteGraph g = SmallGraph();
  Matrix left_emb(3, 1, {1, 2, 3});
  Matrix right_emb(4, 1, {1, 2, 3, 4});
  // Left cluster 2 is empty.
  auto result = CoarsenBipartiteGraph(g, left_emb, right_emb, {0, 0, 1}, 3,
                                      {0, 0, 1, 1}, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_FLOAT_EQ(result.value().left_features(2, 0), 0.0f);
  EXPECT_EQ(result.value().graph.LeftDegree(2), 0);
}

TEST(CoarsenTest, RejectsBadAssignments) {
  BipartiteGraph g = SmallGraph();
  Matrix left_emb(3, 1);
  Matrix right_emb(4, 1);
  EXPECT_FALSE(CoarsenBipartiteGraph(g, left_emb, right_emb, {0, 0}, 2,
                                     {0, 0, 1, 1}, 2)
                   .ok());
  EXPECT_FALSE(CoarsenBipartiteGraph(g, left_emb, right_emb, {0, 0, 5}, 2,
                                     {0, 0, 1, 1}, 2)
                   .ok());
  EXPECT_FALSE(CoarsenBipartiteGraph(g, left_emb, right_emb, {0, 0, 1}, 0,
                                     {0, 0, 1, 1}, 2)
                   .ok());
}

TEST(CoarsenTest, PreservesTotalWeight) {
  BipartiteGraph g = SmallGraph();
  Matrix left_emb(3, 1);
  Matrix right_emb(4, 1);
  auto result = CoarsenBipartiteGraph(g, left_emb, right_emb, {0, 1, 0}, 2,
                                      {1, 0, 1, 0}, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().graph.TotalWeight(), g.TotalWeight(), 1e-5);
}

}  // namespace
}  // namespace hignn
