#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/serialization.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/status.h"

namespace hignn {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = TempPath(name);
  std::filesystem::remove_all(dir);
  return dir;
}

struct FaultGuard {
  ~FaultGuard() { fault::Configure(""); }
};

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.FillNormal(rng);
  return m;
}

HignnLevel MakeLevel(uint64_t seed) {
  Rng rng(seed);
  HignnLevel level;
  BipartiteGraphBuilder builder(4, 3);
  EXPECT_TRUE(builder.AddEdge(0, 1, 1.0f).ok());
  EXPECT_TRUE(builder.AddEdge(2, 2, 2.0f).ok());
  EXPECT_TRUE(builder.AddEdge(3, 0, 0.5f).ok());
  level.graph = builder.Build();
  level.left_embeddings = Matrix(4, 4);
  level.left_embeddings.FillNormal(rng);
  level.right_embeddings = Matrix(3, 4);
  level.right_embeddings.FillNormal(rng);
  level.left_assignment = {0, 1, 0, 1};
  level.right_assignment = {0, 0, 1};
  level.num_left_clusters = 2;
  level.num_right_clusters = 2;
  level.train_loss = 0.75;
  return level;
}

TrainingCheckpoint MakeCheckpoint(uint64_t fingerprint, int64_t sequence) {
  TrainingCheckpoint ckpt;
  ckpt.fingerprint = fingerprint;
  ckpt.sequence = sequence;
  ckpt.level = 2;
  ckpt.sage_step = 4;
  ckpt.completed_levels.push_back(MakeLevel(5));
  BipartiteGraphBuilder builder(2, 2);
  EXPECT_TRUE(builder.AddEdge(0, 1, 1.0f).ok());
  ckpt.graph = builder.Build();
  ckpt.left_features = RandomMatrix(2, 3, 6);
  ckpt.right_features = RandomMatrix(2, 3, 7);
  ckpt.params.push_back(RandomMatrix(3, 2, 8));
  ckpt.opt.tensors.push_back(RandomMatrix(3, 2, 9));
  ckpt.opt.tensors.push_back(RandomMatrix(3, 2, 10));
  ckpt.opt.steps.push_back(4);
  ckpt.learning_rate = 0.01f;
  ckpt.tail_loss_sum = 2.0;
  ckpt.tail_count = 1;
  return ckpt;
}

/// One saved artifact plus the loader that must reject its corruptions.
struct Artifact {
  std::string name;
  std::string path;
  std::function<Status(const std::string&)> load;
};

// Every artifact type in the repo, saved once and corrupted many ways.
std::vector<Artifact> BuildArtifacts() {
  std::vector<Artifact> artifacts;

  {
    Artifact a;
    a.name = "matrix";
    a.path = TempPath("corrupt_src_matrix.bin");
    EXPECT_TRUE(SaveMatrix(RandomMatrix(16, 8, 21), a.path).ok());
    a.load = [](const std::string& p) { return LoadMatrix(p).status(); };
    artifacts.push_back(std::move(a));
  }
  {
    Artifact a;
    a.name = "graph";
    a.path = TempPath("corrupt_src_graph.bin");
    BipartiteGraphBuilder builder(6, 5);
    EXPECT_TRUE(builder.AddEdge(0, 4, 1.0f).ok());
    EXPECT_TRUE(builder.AddEdge(5, 0, 2.0f).ok());
    EXPECT_TRUE(builder.AddEdge(3, 3, 0.5f).ok());
    EXPECT_TRUE(SaveBipartiteGraph(builder.Build(), a.path).ok());
    a.load = [](const std::string& p) {
      return LoadBipartiteGraph(p).status();
    };
    artifacts.push_back(std::move(a));
  }
  {
    Artifact a;
    a.name = "model";
    a.path = TempPath("corrupt_src_model.hgnn");
    std::vector<HignnLevel> levels;
    levels.push_back(MakeLevel(31));
    levels.push_back(MakeLevel(32));
    EXPECT_TRUE(
        SaveHignnModel(HignnModel::FromLevels(std::move(levels)), a.path)
            .ok());
    a.load = [](const std::string& p) { return LoadHignnModel(p).status(); };
    artifacts.push_back(std::move(a));
  }
  {
    Artifact a;
    a.name = "checkpoint";
    const std::string dir = FreshDir("corrupt_src_ckpt");
    CheckpointOptions options;
    options.dir = dir;
    EXPECT_TRUE(SaveCheckpoint(MakeCheckpoint(41, 1), options).ok());
    a.path = CheckpointPath(dir, 1);
    a.load = [](const std::string& p) {
      return LoadCheckpointFile(p).status();
    };
    artifacts.push_back(std::move(a));
  }
  return artifacts;
}

TEST(CorruptionTest, TruncationIsRejectedEverywhere) {
  const std::string victim = TempPath("truncated_artifact.bin");
  for (const Artifact& artifact : BuildArtifacts()) {
    const std::string bytes = ReadBytes(artifact.path);
    ASSERT_GT(bytes.size(), 16u) << artifact.name;
    const size_t cuts[] = {0, 1, bytes.size() / 4, bytes.size() / 2,
                           bytes.size() - 1};
    for (size_t cut : cuts) {
      SCOPED_TRACE(artifact.name + " truncated to " + std::to_string(cut));
      WriteBytes(victim, bytes.substr(0, cut));
      const Status status = artifact.load(victim);
      EXPECT_EQ(status.code(), StatusCode::kIOError) << status.ToString();
    }
  }
}

TEST(CorruptionTest, SingleBitFlipIsRejectedEverywhere) {
  const std::string victim = TempPath("bitflipped_artifact.bin");
  for (const Artifact& artifact : BuildArtifacts()) {
    const std::string bytes = ReadBytes(artifact.path);
    const size_t n = bytes.size();
    // Header magic, version/tag region, payload body, section table, and
    // the footer trailer itself.
    const size_t offsets[] = {0, 5, n / 3, n / 2, (2 * n) / 3, n - 5, n - 1};
    for (size_t offset : offsets) {
      SCOPED_TRACE(artifact.name + " bit flip at " + std::to_string(offset));
      std::string mutated = bytes;
      mutated[offset] = static_cast<char>(mutated[offset] ^ 0x10);
      WriteBytes(victim, mutated);
      const Status status = artifact.load(victim);
      EXPECT_EQ(status.code(), StatusCode::kIOError) << status.ToString();
    }
    // The pristine bytes still load: the rejections above are corruption
    // detection, not a broken loader.
    WriteBytes(victim, bytes);
    EXPECT_TRUE(artifact.load(victim).ok()) << artifact.name;
  }
}

TEST(CorruptionTest, GarbageAndEmptyFilesAreRejected) {
  const std::string path = TempPath("garbage_artifact.bin");
  WriteBytes(path, "");
  EXPECT_EQ(LoadMatrix(path).status().code(), StatusCode::kIOError);
  WriteBytes(path, "HGNN");  // right magic, nothing else
  EXPECT_EQ(LoadMatrix(path).status().code(), StatusCode::kIOError);
  WriteBytes(path, std::string(512, '\x5a'));
  EXPECT_EQ(LoadCheckpointFile(path).status().code(), StatusCode::kIOError);
  EXPECT_EQ(LoadMatrix(TempPath("no_such_artifact.bin")).status().code(),
            StatusCode::kIOError);
}

// A failed rewrite must leave the previous artifact untouched and no tmp
// debris behind — the atomic tmp+rename contract.
TEST(CorruptionTest, FailedOverwriteLeavesOldArtifactIntact) {
  FaultGuard guard;
  const std::string path = TempPath("overwrite_victim.bin");
  const Matrix original = RandomMatrix(8, 8, 51);
  const Matrix replacement = RandomMatrix(8, 8, 52);
  ASSERT_TRUE(SaveMatrix(original, path).ok());

  const std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<int>(::getpid()));
  // The rename site is probed twice in Close (crash probe, then the fail
  // check), so its fail action arms at hit 2.
  for (const char* site :
       {"io.writer.close=fail", "io.writer.rename=fail@2"}) {
    SCOPED_TRACE(site);
    fault::Configure(site);
    const Status status = SaveMatrix(replacement, path);
    fault::Configure("");
    EXPECT_EQ(status.code(), StatusCode::kIOError);
    EXPECT_FALSE(std::filesystem::exists(tmp_path));  // no debris
    auto loaded = LoadMatrix(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_TRUE(AllClose(loaded.value(), original, 0.0f));
  }

  // Without the fault the overwrite goes through.
  ASSERT_TRUE(SaveMatrix(replacement, path).ok());
  EXPECT_TRUE(AllClose(LoadMatrix(path).ValueOrDie(), replacement, 0.0f));
}

TEST(CorruptionTest, CorruptNewestCheckpointFallsBackToPredecessor) {
  const std::string dir = FreshDir("ckpt_fallback");
  CheckpointOptions options;
  options.dir = dir;
  ASSERT_TRUE(SaveCheckpoint(MakeCheckpoint(77, 1), options).ok());
  ASSERT_TRUE(SaveCheckpoint(MakeCheckpoint(77, 2), options).ok());

  // Corrupt the newest file (the manifest's pick).
  const std::string newest = CheckpointPath(dir, 2);
  std::string bytes = ReadBytes(newest);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  WriteBytes(newest, bytes);

  auto latest = LoadLatestCheckpoint(options, 77);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest.value().sequence, 1);

  // Corrupt the survivor too: nothing resumable remains.
  const std::string older = CheckpointPath(dir, 1);
  bytes = ReadBytes(older);
  bytes.resize(bytes.size() / 2);
  WriteBytes(older, bytes);
  EXPECT_EQ(LoadLatestCheckpoint(options, 77).status().code(),
            StatusCode::kNotFound);
}

TEST(CorruptionTest, TornManifestStillFindsNewestCheckpoint) {
  const std::string dir = FreshDir("ckpt_torn_manifest");
  CheckpointOptions options;
  options.dir = dir;
  ASSERT_TRUE(SaveCheckpoint(MakeCheckpoint(88, 1), options).ok());
  ASSERT_TRUE(SaveCheckpoint(MakeCheckpoint(88, 2), options).ok());
  WriteBytes(dir + "/LATEST", "torn half-written manifes");
  auto latest = LoadLatestCheckpoint(options, 88);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest.value().sequence, 2);
}

}  // namespace
}  // namespace hignn
