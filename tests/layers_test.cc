#include "nn/layers.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/grad_check.h"
#include "nn/optimizer.h"
#include "nn/tape.h"
#include "util/rng.h"

namespace hignn {
namespace {

TEST(DenseTest, OutputShape) {
  Rng rng(1);
  Dense layer("d", 5, 3, Activation::kNone, rng);
  Tape tape;
  Matrix x(4, 5);
  x.FillNormal(rng);
  VarId y = layer.Forward(tape, tape.Input(x), false);
  EXPECT_EQ(tape.value(y).rows(), 4u);
  EXPECT_EQ(tape.value(y).cols(), 3u);
}

TEST(DenseTest, NoBiasIsPureLinear) {
  Rng rng(2);
  Dense layer("m", 3, 2, Activation::kNone, rng, /*use_bias=*/false);
  EXPECT_EQ(layer.Params().size(), 1u);  // weight only
  Tape tape;
  Matrix zero(1, 3);
  VarId y = layer.Forward(tape, tape.Input(zero), false);
  EXPECT_FLOAT_EQ(tape.value(y)(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(tape.value(y)(0, 1), 0.0f);
}

TEST(DenseTest, GradientsFlowToParameters) {
  Rng rng(3);
  Dense layer("d", 4, 2, Activation::kTanh, rng);
  Tape tape;
  Matrix x(3, 4);
  x.FillNormal(rng);
  VarId y = layer.Forward(tape, tape.Input(x), true);
  VarId loss = tape.MeanAll(tape.Mul(y, y));
  tape.Backward(loss);
  layer.AccumulateGrads(tape);
  auto params = layer.Params();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_GT(params[0]->grad.SquaredNorm(), 0.0);
  EXPECT_GT(params[1]->grad.SquaredNorm(), 0.0);
}

TEST(DenseTest, WeightGradientMatchesFiniteDifference) {
  Rng rng(4);
  Matrix x(3, 4);
  x.FillNormal(rng);
  Dense layer("d", 4, 2, Activation::kSigmoid, rng);
  Parameter* weight = layer.Params()[0];

  auto loss_at = [&](const Matrix& w) {
    weight->value = w;
    Tape tape;
    VarId y = layer.Forward(tape, tape.Input(x), false);
    VarId loss = tape.MeanAll(tape.Mul(y, y));
    return static_cast<double>(tape.value(loss)(0, 0));
  };

  const Matrix w0 = weight->value;
  {
    Tape tape;
    VarId y = layer.Forward(tape, tape.Input(x), true);
    VarId loss = tape.MeanAll(tape.Mul(y, y));
    tape.Backward(loss);
    weight->grad.Fill(0.0f);
    layer.AccumulateGrads(tape);
  }
  const GradCheckResult check = CheckGradient(loss_at, w0, weight->grad);
  EXPECT_TRUE(check.passed) << check.max_abs_error;
}

TEST(MlpTest, ChainsDimensions) {
  Rng rng(5);
  Mlp mlp("m", {8, 6, 4, 1}, Activation::kLeakyRelu, Activation::kNone, rng);
  EXPECT_EQ(mlp.in_dim(), 8u);
  EXPECT_EQ(mlp.out_dim(), 1u);
  EXPECT_EQ(mlp.Params().size(), 6u);  // 3 layers x (W, b)
  Tape tape;
  Matrix x(2, 8);
  x.FillNormal(rng);
  VarId y = mlp.Forward(tape, tape.Input(x), false);
  EXPECT_EQ(tape.value(y).rows(), 2u);
  EXPECT_EQ(tape.value(y).cols(), 1u);
}

// Training an MLP with Adam must solve XOR — a full end-to-end check of
// layers, tape, loss and optimizer together.
TEST(MlpTest, LearnsXor) {
  Rng rng(6);
  Mlp mlp("xor", {2, 8, 1}, Activation::kTanh, Activation::kNone, rng);
  Adam optimizer(0.05f);

  Matrix x(4, 2, {0, 0, 0, 1, 1, 0, 1, 1});
  const std::vector<float> labels = {0, 1, 1, 0};

  double final_loss = 1e9;
  for (int step = 0; step < 400; ++step) {
    Tape tape;
    VarId logits = mlp.Forward(tape, tape.Input(x), true);
    VarId loss = tape.BceWithLogits(logits, labels);
    final_loss = tape.value(loss)(0, 0);
    tape.Backward(loss);
    mlp.AccumulateGrads(tape);
    optimizer.Step(mlp.Params());
  }
  EXPECT_LT(final_loss, 0.05);

  Tape tape;
  VarId probs = tape.Sigmoid(mlp.Forward(tape, tape.Input(x), false));
  const Matrix& p = tape.value(probs);
  EXPECT_LT(p(0, 0), 0.3f);
  EXPECT_GT(p(1, 0), 0.7f);
  EXPECT_GT(p(2, 0), 0.7f);
  EXPECT_LT(p(3, 0), 0.3f);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  // Minimize ||w - target||^2 directly via Parameter updates.
  Parameter w("w", Matrix(1, 3));
  Matrix target(1, 3, {1, -2, 3});
  Sgd sgd(0.1f);
  for (int step = 0; step < 200; ++step) {
    // grad = 2 (w - target)
    w.grad = w.value;
    w.grad.Axpy(-1.0f, target);
    w.grad.Scale(2.0f);
    sgd.Step({&w});
  }
  EXPECT_TRUE(AllClose(w.value, target, 1e-3f));
}

TEST(SgdTest, MomentumAcceleratesOnSameProblem) {
  auto run = [](float momentum) {
    Parameter w("w", Matrix(1, 1));
    Matrix target(1, 1, {10.0f});
    Sgd sgd(0.01f, momentum);
    for (int step = 0; step < 50; ++step) {
      w.grad = w.value;
      w.grad.Axpy(-1.0f, target);
      w.grad.Scale(2.0f);
      sgd.Step({&w});
    }
    return std::fabs(w.value(0, 0) - 10.0f);
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(AdamTest, HandlesSparseScaleDifferences) {
  // One dimension has a 100x larger gradient scale; Adam normalizes.
  Parameter w("w", Matrix(1, 2));
  Matrix target(1, 2, {1.0f, 1.0f});
  Adam adam(0.05f);
  for (int step = 0; step < 500; ++step) {
    w.grad(0, 0) = 200.0f * (w.value(0, 0) - target(0, 0));
    w.grad(0, 1) = 2.0f * (w.value(0, 1) - target(0, 1));
    adam.Step({&w});
  }
  EXPECT_NEAR(w.value(0, 0), 1.0f, 0.02f);
  EXPECT_NEAR(w.value(0, 1), 1.0f, 0.02f);
}

TEST(OptimizerTest, StepZeroesGradients) {
  Parameter w("w", Matrix(1, 2));
  w.grad.Fill(1.0f);
  Sgd sgd(0.1f);
  sgd.Step({&w});
  EXPECT_DOUBLE_EQ(w.grad.SquaredNorm(), 0.0);
}

TEST(OptimizerTest, ClipNormBoundsUpdate) {
  Parameter w("w", Matrix(1, 2));
  w.grad(0, 0) = 300.0f;
  w.grad(0, 1) = 400.0f;  // norm 500
  Sgd sgd(1.0f);
  sgd.set_clip_norm(5.0f);
  sgd.Step({&w});
  // Update = -lr * clipped grad; clipped norm = 5.
  EXPECT_NEAR(std::sqrt(w.value.SquaredNorm()), 5.0, 1e-4);
}

TEST(OptimizerTest, WeightDecayShrinksWeights) {
  Parameter w("w", Matrix(1, 1, {10.0f}));
  Sgd sgd(0.1f);
  sgd.set_weight_decay(0.5f);
  w.grad.Fill(0.0f);
  sgd.Step({&w});
  // grad += decay * w = 5 -> w -= 0.1 * 5.
  EXPECT_NEAR(w.value(0, 0), 9.5f, 1e-5);
}

}  // namespace
}  // namespace hignn
