#include "taxonomy/taxonomy.h"

#include <set>

#include <gtest/gtest.h>

#include "taxonomy/metrics.h"
#include "taxonomy/pipeline.h"
#include "taxonomy/shoal.h"

namespace hignn {
namespace {

TaxonomyPipelineConfig SmallPipelineConfig() {
  TaxonomyPipelineConfig config;
  config.hignn.levels = 2;
  config.hignn.sage.dims = {8, 8};
  config.hignn.sage.fanouts = {5, 3};
  config.hignn.sage.train_steps = 40;
  config.hignn.min_clusters = 2;
  config.word2vec.dim = 12;
  config.word2vec.epochs = 2;
  return config;
}

class TaxonomyFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new QueryDataset(
        QueryDataset::Generate(QueryDatasetConfig::Tiny()).ValueOrDie());
    hignn_run_ = new TaxonomyRun(
        RunHignnTaxonomy(*dataset_, SmallPipelineConfig()).ValueOrDie());
    shoal_run_ = new TaxonomyRun(
        RunShoalTaxonomy(*dataset_, SmallPipelineConfig(),
                         hignn_run_->level_topics)
            .ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete shoal_run_;
    delete hignn_run_;
    delete dataset_;
    shoal_run_ = nullptr;
    hignn_run_ = nullptr;
    dataset_ = nullptr;
  }

  static QueryDataset* dataset_;
  static TaxonomyRun* hignn_run_;
  static TaxonomyRun* shoal_run_;
};

QueryDataset* TaxonomyFixture::dataset_ = nullptr;
TaxonomyRun* TaxonomyFixture::hignn_run_ = nullptr;
TaxonomyRun* TaxonomyFixture::shoal_run_ = nullptr;

TEST_F(TaxonomyFixture, LevelsAndAssignmentsWellFormed) {
  for (const TaxonomyRun* run : {hignn_run_, shoal_run_}) {
    const Taxonomy& taxonomy = run->taxonomy;
    ASSERT_EQ(taxonomy.num_levels(), 2);
    for (const auto& level : taxonomy.levels) {
      EXPECT_EQ(level.item_assignment.size(),
                static_cast<size_t>(dataset_->num_items()));
      EXPECT_EQ(level.query_assignment.size(),
                static_cast<size_t>(dataset_->num_queries()));
      for (int32_t a : level.item_assignment) {
        EXPECT_GE(a, 0);
        EXPECT_LT(a, level.num_topics);
      }
      for (int32_t a : level.query_assignment) {
        EXPECT_GE(a, -1);  // -1 = query with no clicks
        EXPECT_LT(a, level.num_topics);
      }
    }
  }
}

TEST_F(TaxonomyFixture, ShoalUsesRequestedTopicCounts) {
  for (int32_t l = 0; l < shoal_run_->taxonomy.num_levels(); ++l) {
    EXPECT_EQ(shoal_run_->taxonomy.levels[static_cast<size_t>(l)].num_topics,
              hignn_run_->level_topics[static_cast<size_t>(l)]);
  }
}

TEST_F(TaxonomyFixture, ParentsByMajorityVote) {
  const Taxonomy& taxonomy = hignn_run_->taxonomy;
  const auto parents = taxonomy.ParentsOfLevel(0);
  ASSERT_EQ(parents.size(),
            static_cast<size_t>(taxonomy.levels[0].num_topics));
  const auto members = taxonomy.TopicItems(0);
  for (int32_t t = 0; t < taxonomy.levels[0].num_topics; ++t) {
    if (members[static_cast<size_t>(t)].empty()) {
      EXPECT_EQ(parents[static_cast<size_t>(t)], -1);
      continue;
    }
    ASSERT_GE(parents[static_cast<size_t>(t)], 0);
    ASSERT_LT(parents[static_cast<size_t>(t)],
              taxonomy.levels[1].num_topics);
    // The parent must hold at least one of the topic's items.
    int32_t hits = 0;
    for (int32_t item : members[static_cast<size_t>(t)]) {
      if (taxonomy.levels[1].item_assignment[static_cast<size_t>(item)] ==
          parents[static_cast<size_t>(t)]) {
        ++hits;
      }
    }
    EXPECT_GT(hits, 0);
  }
}

TEST_F(TaxonomyFixture, TopicItemsPartitionItems) {
  const auto members = hignn_run_->taxonomy.TopicItems(0);
  int64_t total = 0;
  for (const auto& topic : members) total += topic.size();
  EXPECT_EQ(total, dataset_->num_items());
}

TEST_F(TaxonomyFixture, DescriptionsMatchedForEveryTopic) {
  const Taxonomy& taxonomy = hignn_run_->taxonomy;
  ASSERT_EQ(taxonomy.descriptions.size(),
            static_cast<size_t>(taxonomy.num_levels()));
  for (int32_t l = 0; l < taxonomy.num_levels(); ++l) {
    ASSERT_EQ(taxonomy.descriptions[static_cast<size_t>(l)].size(),
              static_cast<size_t>(
                  taxonomy.levels[static_cast<size_t>(l)].num_topics));
    for (const auto& description :
         taxonomy.descriptions[static_cast<size_t>(l)]) {
      EXPECT_FALSE(description.empty());
    }
  }
}

TEST_F(TaxonomyFixture, DescriptionsComeFromTopicRelatedQueries) {
  // For a sample of topics the matched description must be the text of
  // some query that actually clicks into the topic.
  const Taxonomy& taxonomy = hignn_run_->taxonomy;
  const auto& level = taxonomy.levels[0];
  std::set<std::string> all_queries;
  for (int32_t q = 0; q < dataset_->num_queries(); ++q) {
    all_queries.insert(dataset_->QueryText(q));
  }
  int32_t named = 0;
  for (const auto& description : taxonomy.descriptions[0]) {
    if (description != "(unnamed topic)") {
      EXPECT_TRUE(all_queries.count(description)) << description;
      ++named;
    }
  }
  EXPECT_GT(named, level.num_topics / 2);
}

TEST_F(TaxonomyFixture, EvaluationScoresInRange) {
  TaxonomyEvalConfig eval;
  eval.sample_topics = 20;
  eval.items_per_topic = 20;
  for (const TaxonomyRun* run : {hignn_run_, shoal_run_}) {
    auto quality = EvaluateTaxonomy(*dataset_, run->taxonomy, eval);
    ASSERT_TRUE(quality.ok()) << quality.status().ToString();
    EXPECT_GT(quality.value().accuracy, 0.0);
    EXPECT_LE(quality.value().accuracy, 1.0);
    EXPECT_GE(quality.value().diversity, 0.0);
    EXPECT_LE(quality.value().diversity, 1.0);
    EXPECT_GE(quality.value().finest_nmi, 0.0);
    EXPECT_LE(quality.value().finest_nmi, 1.0 + 1e-9);
    EXPECT_EQ(quality.value().average_levels, 2.0);
  }
}

TEST_F(TaxonomyFixture, HignnRecoversPlantedStructure) {
  // The finest HiGNN clustering should be meaningfully aligned with the
  // planted leaves (well above a random baseline).
  auto quality =
      EvaluateTaxonomy(*dataset_, hignn_run_->taxonomy, TaxonomyEvalConfig{});
  ASSERT_TRUE(quality.ok());
  EXPECT_GT(quality.value().finest_nmi, 0.3);
  EXPECT_GT(quality.value().accuracy, 0.5);
}

TEST_F(TaxonomyFixture, RenderProducesTree) {
  const std::string tree = RenderTaxonomySubtree(
      hignn_run_->taxonomy, *dataset_, /*level=*/1, /*topic=*/0);
  EXPECT_NE(tree.find("[L2]"), std::string::npos);
  EXPECT_NE(tree.find("items"), std::string::npos);
}

TEST(TaxonomyUnitTest, NmiKnownValues) {
  // Identical labelings -> 1; independent -> ~0.
  std::vector<int32_t> a = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(NormalizedMutualInformation(a, a), 1.0, 1e-9);
  std::vector<int32_t> relabeled = {5, 5, 9, 9, 7, 7};
  EXPECT_NEAR(NormalizedMutualInformation(a, relabeled), 1.0, 1e-9);
  std::vector<int32_t> constant(6, 0);
  EXPECT_NEAR(NormalizedMutualInformation(a, constant), 0.0, 1e-9);
}

TEST(TaxonomyUnitTest, RepresentativenessIsGeometricMean) {
  EXPECT_DOUBLE_EQ(TopicDescriptionMatcher::Representativeness(0.25, 1.0),
                   0.5);
  EXPECT_DOUBLE_EQ(TopicDescriptionMatcher::Representativeness(0.0, 0.9),
                   0.0);
  EXPECT_DOUBLE_EQ(TopicDescriptionMatcher::Representativeness(0.5, 0.0),
                   0.0);
}

TEST(TaxonomyUnitTest, ShoalRejectsIncreasingCounts) {
  auto dataset =
      QueryDataset::Generate(QueryDatasetConfig::Tiny()).ValueOrDie();
  Word2VecConfig w2v;
  w2v.dim = 8;
  w2v.epochs = 1;
  auto word2vec =
      Word2Vec::Train(dataset.BuildCorpus(), dataset.vocab(), w2v)
          .ValueOrDie();
  EXPECT_FALSE(BuildTaxonomyShoal(dataset, word2vec, {4, 8}).ok());
  EXPECT_FALSE(BuildTaxonomyShoal(dataset, word2vec, {}).ok());
  EXPECT_TRUE(BuildTaxonomyShoal(dataset, word2vec, {8, 4}).ok());
}

}  // namespace
}  // namespace hignn
