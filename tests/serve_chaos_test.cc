// Serving chaos harness: hot-reload and resilience tests that drive the
// online stack through injected faults (util/fault_injection) and
// concurrent reload/traffic races, asserting the two serving contracts:
//
//   1. Zero downtime — a reload (successful or failed) never fails a
//      request that a retrying client is willing to re-send, and a failed
//      reload is a strict no-op for traffic (the old generation serves).
//   2. Bitwise stability — scores for the same (user, item) pairs are
//      float-identical across any number of generation swaps of the same
//      exported store.
//
// Also compiled into hignn_threading_tests so `ctest -L tsan` races the
// RCU pointer swap, the batcher's generation acquisition, and concurrent
// reloads under ThreadSanitizer.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/hignn.h"
#include "data/synthetic.h"
#include "obs/event_log.h"
#include "predict/cvr_model.h"
#include "predict/features.h"
#include "serve/client.h"
#include "serve/embedding_store.h"
#include "serve/engine.h"
#include "serve/request_id.h"
#include "serve/serve_metrics.h"
#include "serve/server.h"
#include "serve/store_manager.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace hignn {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A small trained pipeline exported once; every test reloads from copies
// or corruptions of this one store file. Deliberately smaller than
// serve_test's fixture: this suite also runs under TSan.
class ServeChaosFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticConfig data_config = SyntheticConfig::Tiny();
    data_config.num_users = 120;
    data_config.num_items = 60;
    data_config.num_days = 5;
    data_config.mean_clicks_per_user_day = 3.0;
    auto dataset = SyntheticDataset::Generate(data_config).ValueOrDie();

    HignnConfig hignn_config;
    hignn_config.levels = 2;
    hignn_config.sage.dims = {8, 8};
    hignn_config.sage.fanouts = {4, 3};
    hignn_config.sage.train_steps = 20;
    hignn_config.min_clusters = 2;
    auto model = Hignn::Fit(dataset.BuildTrainGraph(),
                            dataset.user_features(), dataset.item_features(),
                            hignn_config)
                     .ValueOrDie();

    const FeatureSpec spec = FeatureSpec::HiGnn(model.num_levels());
    auto builder =
        CvrFeatureBuilder::Create(&dataset, &model, spec).ValueOrDie();
    const SampleSet samples = BuildSamples(dataset, true, 7);
    CvrModelConfig cvr_config;
    cvr_config.hidden = {16, 8};
    cvr_config.epochs = 1;
    cvr_config.batch_size = 128;
    auto cvr = CvrModel::Create(builder.dim(), cvr_config).ValueOrDie();
    ASSERT_TRUE(cvr.Train(builder, samples.train).ok());

    store_path_ = TempPath("chaos_fixture.hgnnstore");
    ASSERT_TRUE(
        ExportEmbeddingStore(model, dataset, spec, cvr, store_path_).ok());

    for (size_t i = 0; i < 24 && i < samples.test.size(); ++i) {
      pairs_.push_back({samples.test[i].user, samples.test[i].item});
    }
    ASSERT_GE(pairs_.size(), 8u);
  }

  void TearDown() override {
    // Never leak an armed fault site into the next test.
    fault::Configure("");
  }

  static std::string store_path_;
  static std::vector<ScoreRequest> pairs_;
};

std::string ServeChaosFixture::store_path_;
std::vector<ScoreRequest> ServeChaosFixture::pairs_;

// ------------------------------------------------------ StoreManager ----

TEST_F(ServeChaosFixture, ReloadPreservesBitwiseScoreParity) {
  auto stores =
      std::move(StoreManager::Open(store_path_, nullptr).ValueOrDie());
  EXPECT_EQ(stores->generation(), 1);
  const std::vector<float> before =
      stores->Current()->engine->ScoreBatch(pairs_).ValueOrDie();

  // Swap to a byte-identical copy at a different path, then back to the
  // original: three generations, one logical store.
  const std::string copy_path = TempPath("chaos_copy.hgnnstore");
  WriteBytes(copy_path, ReadBytes(store_path_));
  EXPECT_EQ(stores->Reload(copy_path).ValueOrDie(), 2);
  EXPECT_EQ(stores->Current()->path, copy_path);
  EXPECT_EQ(stores->Reload().ValueOrDie(), 3);  // "" = re-open current

  const std::vector<float> after =
      stores->Current()->engine->ScoreBatch(pairs_).ValueOrDie();
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i) {
    ASSERT_EQ(after[i], before[i]) << "pair " << i;  // bitwise, not near
  }
  EXPECT_EQ(stores->reload_total(), 2);
  EXPECT_EQ(stores->reload_failed_total(), 0);
}

TEST_F(ServeChaosFixture, InFlightGenerationSurvivesAReloadUnderneathIt) {
  auto stores =
      std::move(StoreManager::Open(store_path_, nullptr).ValueOrDie());
  const std::shared_ptr<const StoreGeneration> held = stores->Current();
  ASSERT_TRUE(stores->Reload().ok());
  ASSERT_TRUE(stores->Reload().ok());
  // The held generation is unpublished but must stay fully usable — this
  // is the RCU guarantee in-flight requests rely on.
  EXPECT_EQ(held->number, 1);
  EXPECT_TRUE(held->engine->ScoreBatch(pairs_).ok());
  EXPECT_EQ(stores->Current()->number, 3);
}

TEST_F(ServeChaosFixture, CorruptAndTruncatedReloadsAreNoOps) {
  ServeMetrics metrics;
  auto stores =
      std::move(StoreManager::Open(store_path_, &metrics).ValueOrDie());
  const std::vector<float> before =
      stores->Current()->engine->ScoreBatch(pairs_).ValueOrDie();
  const std::string bytes = ReadBytes(store_path_);

  const std::string truncated_path = TempPath("chaos_truncated.hgnnstore");
  WriteBytes(truncated_path, bytes.substr(0, bytes.size() - 64));
  auto truncated = stores->Reload(truncated_path);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kIOError);

  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x20);
  const std::string corrupt_path = TempPath("chaos_corrupt.hgnnstore");
  WriteBytes(corrupt_path, corrupt);
  ASSERT_FALSE(stores->Reload(corrupt_path).ok());

  // Both failures left generation 1 serving, path untouched, and the
  // same bits coming back.
  EXPECT_EQ(stores->generation(), 1);
  EXPECT_EQ(stores->Current()->path, store_path_);
  const std::vector<float> after =
      stores->Current()->engine->ScoreBatch(pairs_).ValueOrDie();
  for (size_t i = 0; i < after.size(); ++i) {
    ASSERT_EQ(after[i], before[i]) << "pair " << i;
  }
  EXPECT_EQ(stores->reload_total(), 2);
  EXPECT_EQ(stores->reload_failed_total(), 2);
  EXPECT_EQ(metrics.reload_failed_total(), 2);
}

TEST_F(ServeChaosFixture, InjectedOpenFaultFailsReloadThenRecovers) {
  auto stores =
      std::move(StoreManager::Open(store_path_, nullptr).ValueOrDie());
  fault::Configure("serve.store.open=fail");
  auto injected = stores->Reload();
  ASSERT_FALSE(injected.ok());
  EXPECT_EQ(stores->generation(), 1);
  EXPECT_EQ(stores->reload_failed_total(), 1);
  fault::Configure("");
  // One-shot fault cleared: the very next reload succeeds.
  EXPECT_EQ(stores->Reload().ValueOrDie(), 2);
}

// ------------------------------------------------------- TCP serving ----

TEST_F(ServeChaosFixture, ReloadVerbSwapsGenerationsVisibleToClients) {
  ServeMetrics metrics;
  auto stores =
      std::move(StoreManager::Open(store_path_, &metrics).ValueOrDie());
  auto server =
      std::move(ScoringServer::Start(stores.get(), &metrics, ServerConfig())
                    .ValueOrDie());
  auto client =
      std::move(ScoringClient::Connect("127.0.0.1", server->port())
                    .ValueOrDie());

  EXPECT_EQ(client.HealthGeneration().ValueOrDie(), 1);
  const std::vector<float> before = client.Score(pairs_).ValueOrDie();

  EXPECT_EQ(client.Reload().ValueOrDie(), 2);
  EXPECT_EQ(client.HealthGeneration().ValueOrDie(), 2);

  // A reload from a corrupt path answers kInternal and leaves the live
  // generation serving.
  const std::string bytes = ReadBytes(store_path_);
  const std::string corrupt_path = TempPath("chaos_wire_corrupt.hgnnstore");
  WriteBytes(corrupt_path, bytes.substr(0, bytes.size() / 2));
  auto failed = client.Reload(corrupt_path);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
  EXPECT_EQ(client.HealthGeneration().ValueOrDie(), 2);

  const std::vector<float> after = client.Score(pairs_).ValueOrDie();
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i) {
    ASSERT_EQ(after[i], before[i]) << "pair " << i;
  }
  const std::string json = client.Stats().ValueOrDie();
  EXPECT_NE(json.find("\"store_generation\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"reloads\": {\"total\": 2, \"failed\": 1}"),
            std::string::npos)
      << json;
  server->Stop();
}

TEST_F(ServeChaosFixture, ClientRetriesThroughInjectedSendFault) {
  ServeMetrics metrics;
  auto stores =
      std::move(StoreManager::Open(store_path_, &metrics).ValueOrDie());
  auto server =
      std::move(ScoringServer::Start(stores.get(), &metrics, ServerConfig())
                    .ValueOrDie());
  ClientConfig config;
  config.retry.max_attempts = 3;
  config.retry.initial_backoff_ms = 1;
  auto client =
      std::move(ScoringClient::Connect("127.0.0.1", server->port(), config)
                    .ValueOrDie());

  // The client's first SendFrame is the first hit on the site (the
  // server only sends after receiving a request), so the injected fault
  // lands on the request frame; the retry reconnects and succeeds.
  fault::Configure("serve.frame.send=fail@1");
  const std::vector<float> scores = client.Score(pairs_).ValueOrDie();
  EXPECT_EQ(scores.size(), pairs_.size());
  EXPECT_EQ(client.retries_attempted(), 1);

  // Fail-fast client with the same fault re-armed surfaces Unavailable.
  fault::Configure("serve.frame.send=fail@1");
  auto fail_fast =
      std::move(ScoringClient::Connect("127.0.0.1", server->port())
                    .ValueOrDie());
  auto failed = fail_fast.Score(pairs_);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  server->Stop();
}

TEST_F(ServeChaosFixture, ClientRetriesThroughDroppedConnection) {
  ServeMetrics metrics;
  auto stores =
      std::move(StoreManager::Open(store_path_, &metrics).ValueOrDie());
  auto server =
      std::move(ScoringServer::Start(stores.get(), &metrics, ServerConfig())
                    .ValueOrDie());

  // The accept-side chaos site closes the first connection right after
  // accept — the client sees its request die mid-flight (EOF or reset)
  // and must recover onto a fresh connection.
  fault::Configure("serve.handler.accept=fail@1");
  ClientConfig config;
  config.retry.max_attempts = 4;
  config.retry.initial_backoff_ms = 1;
  auto client =
      std::move(ScoringClient::Connect("127.0.0.1", server->port(), config)
                    .ValueOrDie());
  const std::vector<float> scores = client.Score(pairs_).ValueOrDie();
  EXPECT_EQ(scores.size(), pairs_.size());
  EXPECT_GE(client.retries_attempted(), 1);
  server->Stop();
}

// ------------------------------------------ tracing under chaos (§17) --

// Slow-exemplar capture keeps working while the frame layer is failing
// and the store hot-reloads between traced requests: every logical call
// that ultimately succeeds lands in the private event log as a slow
// exemplar (threshold 1us) under its deterministic request ID, and the
// scores stay bitwise-identical throughout — tracing observes the chaos,
// it never changes the outcome.
TEST_F(ServeChaosFixture, ExemplarCaptureSurvivesFrameFaultsAndReload) {
  ServeMetrics metrics;
  auto stores =
      std::move(StoreManager::Open(store_path_, &metrics).ValueOrDie());
  obs::EventLog log(/*capacity=*/64, /*exemplar_capacity=*/16);
  ServerConfig server_config;
  server_config.event_log = &log;
  server_config.slow_threshold_us = 1;  // every request is an exemplar
  auto server = std::move(
      ScoringServer::Start(stores.get(), &metrics, server_config)
          .ValueOrDie());

  const std::vector<float> expected =
      stores->Current()->engine->ScoreBatch(pairs_).ValueOrDie();

  ClientConfig config;
  config.retry.max_attempts = 4;
  config.retry.initial_backoff_ms = 1;
  config.request_id_seed = 0xC4A05;
  auto client =
      std::move(ScoringClient::Connect("127.0.0.1", server->port(), config)
                    .ValueOrDie());

  // Leg 1: the tagged request frame dies on the wire. The retry re-sends
  // the identical bytes — same request ID — and must still be captured.
  fault::Configure("serve.frame.send=fail@1");
  const std::vector<float> first = client.Score(pairs_).ValueOrDie();
  EXPECT_EQ(client.retries_attempted(), 1);
  const uint64_t first_id = RequestIdGenerator::Derive(0xC4A05, 0);
  EXPECT_EQ(client.last_trace().request_id, first_id);

  // Leg 2: a hot-reload swaps the generation between the traced calls.
  fault::Configure("");
  ASSERT_EQ(client.Reload().ValueOrDie(), 2);

  // Leg 3: a recv fault kills a frame mid-flight (whichever side hits the
  // site first); the client reconnects and the retried call still traces.
  fault::Configure("serve.frame.recv=fail@1");
  const std::vector<float> second = client.Score(pairs_).ValueOrDie();
  EXPECT_GE(client.retries_attempted(), 2);
  const uint64_t second_id = RequestIdGenerator::Derive(0xC4A05, 1);
  EXPECT_EQ(client.last_trace().request_id, second_id);
  fault::Configure("");

  ASSERT_EQ(first.size(), expected.size());
  ASSERT_EQ(second.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(first[i], expected[i]) << "pair " << i;
    ASSERT_EQ(second[i], expected[i]) << "pair " << i;
  }
  server->Stop();

  // Both logical calls survived into the exemplar ring despite the frame
  // faults and the generation swap in between.
  EXPECT_GE(log.slow_recorded(), 2);
  const std::string jsonl = log.DumpJsonl();
  for (const uint64_t id : {first_id, second_id}) {
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(id));
    EXPECT_NE(jsonl.find(hex), std::string::npos)
        << "request " << hex << " missing from event log:\n" << jsonl;
  }
  EXPECT_NE(jsonl.find("\"slow\": true"), std::string::npos) << jsonl;
}

// The headline test: concurrent scoring clients ride through a burst of
// back-to-back hot-reloads with zero failures, monotonic generations,
// and bitwise-identical scores before, during, and after the swaps.
TEST_F(ServeChaosFixture, ReloadUnderLoadLosesNothing) {
  ServeMetrics metrics;
  auto stores =
      std::move(StoreManager::Open(store_path_, &metrics).ValueOrDie());
  ServerConfig server_config;
  server_config.num_threads = 4;
  auto server = std::move(
      ScoringServer::Start(stores.get(), &metrics, server_config)
          .ValueOrDie());

  const std::vector<float> expected =
      stores->Current()->engine->ScoreBatch(pairs_).ValueOrDie();

  constexpr int kClients = 3;
  constexpr int kRounds = 25;
  constexpr int kReloads = 4;
  std::vector<Status> statuses(kClients);
  // hignn-lint: allow(naked-thread) socket clients block on IO
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ClientConfig config;
      config.retry.max_attempts = 4;
      config.retry.initial_backoff_ms = 1;
      config.retry.jitter_seed = 1000 + static_cast<uint64_t>(c);
      auto client =
          ScoringClient::Connect("127.0.0.1", server->port(), config);
      if (!client.ok()) {
        statuses[static_cast<size_t>(c)] = client.status();
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        auto scores = client.value().Score(pairs_);
        if (!scores.ok()) {
          statuses[static_cast<size_t>(c)] = scores.status();
          return;
        }
        for (size_t i = 0; i < expected.size(); ++i) {
          if (scores.value()[i] != expected[i]) {
            statuses[static_cast<size_t>(c)] = Status::Internal(
                "score drifted across a reload");
            return;
          }
        }
      }
    });
  }

  // Back-to-back reloads racing the traffic above.
  int64_t last_generation = 1;
  auto reloader =
      std::move(ScoringClient::Connect("127.0.0.1", server->port())
                    .ValueOrDie());
  for (int r = 0; r < kReloads; ++r) {
    const int64_t generation = reloader.Reload().ValueOrDie();
    EXPECT_EQ(generation, last_generation + 1) << "reload " << r;
    last_generation = generation;
  }

  // hignn-lint: allow(naked-thread) joining the socket clients
  for (std::thread& t : clients) t.join();
  server->Stop();

  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(statuses[static_cast<size_t>(c)].ok())
        << "client " << c << ": "
        << statuses[static_cast<size_t>(c)].ToString();
  }
  EXPECT_EQ(stores->generation(), 1 + kReloads);
  EXPECT_EQ(stores->reload_total(), kReloads);
  EXPECT_EQ(stores->reload_failed_total(), 0);
  EXPECT_EQ(metrics.store_generation(), 1 + kReloads);
}

}  // namespace
}  // namespace hignn
