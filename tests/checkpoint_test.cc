#include "core/checkpoint.h"

#include <cmath>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/hignn.h"
#include "core/training_monitor.h"
#include "data/synthetic.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/status.h"

namespace hignn {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// A per-test checkpoint directory, wiped so reruns start clean.
std::string FreshDir(const std::string& name) {
  const std::string dir = TempPath(name);
  std::filesystem::remove_all(dir);
  return dir;
}

// Disarms fault injection when a test body exits, including on assertion
// failure, so one test's spec never leaks into the next.
struct FaultGuard {
  ~FaultGuard() { fault::Configure(""); }
};

int CountCheckpointFiles(const std::string& dir) {
  int count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) == 0) ++count;
  }
  return count;
}

HignnConfig SmallConfig() {
  HignnConfig config;
  config.levels = 2;
  config.sage.dims = {8, 8};
  config.sage.fanouts = {4, 3};
  config.sage.train_steps = 12;
  config.min_clusters = 2;
  config.num_threads = 1;
  return config;
}

void ExpectModelsBitwiseEqual(const HignnModel& a, const HignnModel& b) {
  ASSERT_EQ(a.num_levels(), b.num_levels());
  EXPECT_TRUE(AllClose(a.AllHierarchicalLeft(), b.AllHierarchicalLeft(), 0.0f));
  EXPECT_TRUE(
      AllClose(a.AllHierarchicalRight(), b.AllHierarchicalRight(), 0.0f));
  for (int32_t l = 0; l < a.num_levels(); ++l) {
    SCOPED_TRACE(l);
    EXPECT_EQ(a.levels()[l].train_loss, b.levels()[l].train_loss);
    EXPECT_EQ(a.levels()[l].num_left_clusters, b.levels()[l].num_left_clusters);
    EXPECT_EQ(a.levels()[l].num_right_clusters,
              b.levels()[l].num_right_clusters);
    EXPECT_EQ(a.levels()[l].left_assignment, b.levels()[l].left_assignment);
    EXPECT_EQ(a.levels()[l].right_assignment, b.levels()[l].right_assignment);
  }
}

// A checkpoint with every field populated non-trivially, so round-trip
// tests notice any dropped or reordered payload.
TrainingCheckpoint MakeSampleCheckpoint(uint64_t fingerprint,
                                        int64_t sequence) {
  TrainingCheckpoint ckpt;
  ckpt.fingerprint = fingerprint;
  ckpt.sequence = sequence;
  ckpt.level = 2;
  ckpt.sage_step = 5;

  Rng rng(11);
  HignnLevel level;
  {
    BipartiteGraphBuilder builder(3, 3);
    EXPECT_TRUE(builder.AddEdge(0, 1, 1.0f).ok());
    EXPECT_TRUE(builder.AddEdge(1, 2, 2.0f).ok());
    EXPECT_TRUE(builder.AddEdge(2, 0, 0.5f).ok());
    level.graph = builder.Build();
  }
  level.left_embeddings = Matrix(3, 4);
  level.left_embeddings.FillNormal(rng);
  level.right_embeddings = Matrix(3, 4);
  level.right_embeddings.FillNormal(rng);
  level.left_assignment = {0, 1, 0};
  level.right_assignment = {1, 0, 1};
  level.num_left_clusters = 2;
  level.num_right_clusters = 2;
  level.train_loss = 0.25;
  ckpt.completed_levels.push_back(std::move(level));

  {
    BipartiteGraphBuilder builder(2, 2);
    EXPECT_TRUE(builder.AddEdge(0, 0, 3.0f).ok());
    EXPECT_TRUE(builder.AddEdge(1, 1, 4.0f).ok());
    ckpt.graph = builder.Build();
  }
  ckpt.left_features = Matrix(2, 3);
  ckpt.left_features.FillNormal(rng);
  ckpt.right_features = Matrix(2, 3);
  ckpt.right_features.FillNormal(rng);

  for (int i = 0; i < 2; ++i) {
    Matrix p(4, 2);
    p.FillNormal(rng);
    ckpt.params.push_back(std::move(p));
    for (int t = 0; t < 2; ++t) {
      Matrix aux(4, 2);
      aux.FillNormal(rng);
      ckpt.opt.tensors.push_back(std::move(aux));
    }
    ckpt.opt.steps.push_back(3);
  }
  ckpt.learning_rate = 0.125f;

  Rng stream(99);
  Matrix burn(5, 5);
  burn.FillNormal(stream);  // advance past the initial state
  ckpt.rng = stream.SaveState();

  ckpt.tail_loss_sum = 1.5;
  ckpt.tail_count = 3;
  ckpt.monitor.ema = 0.5;
  ckpt.monitor.observed = 12;
  ckpt.monitor.rollbacks = 1;
  ckpt.monitor.skipped_steps = 2;
  return ckpt;
}

// --- fault injection --------------------------------------------------

TEST(FaultInjectionTest, DisabledByDefault) {
  FaultGuard guard;
  fault::Configure("");
  EXPECT_FALSE(fault::Enabled());
  EXPECT_FALSE(fault::ShouldFail("nothing.armed"));
  EXPECT_EQ(fault::HitCount("nothing.armed"), 0);
}

TEST(FaultInjectionTest, FailFiresExactlyOnTheArmedHit) {
  FaultGuard guard;
  fault::Configure("unit.fail=fail@2");
  EXPECT_TRUE(fault::Enabled());
  EXPECT_FALSE(fault::ShouldFail("unit.fail"));  // hit 1
  EXPECT_TRUE(fault::ShouldFail("unit.fail"));   // hit 2: armed occurrence
  EXPECT_FALSE(fault::ShouldFail("unit.fail"));  // hit 3: one-shot, passed
  EXPECT_EQ(fault::HitCount("unit.fail"), 3);
  EXPECT_FALSE(fault::ShouldFail("unit.other"));  // unarmed site
}

TEST(FaultInjectionTest, ConfigureReplacesSpecAndResetsCounters) {
  FaultGuard guard;
  fault::Configure("unit.a=fail");
  EXPECT_TRUE(fault::ShouldFail("unit.a"));
  fault::Configure("unit.b=fail");
  EXPECT_FALSE(fault::ShouldFail("unit.a"));  // no longer armed
  EXPECT_EQ(fault::HitCount("unit.a"), 0);    // counters reset
  EXPECT_TRUE(fault::ShouldFail("unit.b"));
}

TEST(FaultInjectionTest, CrashExitsWithHarnessExitCode) {
  EXPECT_EXIT(
      {
        fault::Configure("unit.crash=crash");
        fault::MaybeCrash("unit.crash");
      },
      ::testing::ExitedWithCode(fault::kCrashExitCode), "");
}

// --- training monitor -------------------------------------------------

TEST(TrainingMonitorTest, NonFiniteLossIsImmediateRollback) {
  TrainingMonitor monitor{TrainingMonitorConfig()};
  EXPECT_EQ(monitor.ObserveLoss(1.0), HealthVerdict::kHealthy);
  EXPECT_EQ(monitor.ObserveLoss(std::numeric_limits<double>::quiet_NaN()),
            HealthVerdict::kRollback);
  EXPECT_EQ(monitor.ObserveLoss(std::numeric_limits<double>::infinity()),
            HealthVerdict::kRollback);
}

TEST(TrainingMonitorTest, DivergenceArmsOnlyAfterWarmup) {
  TrainingMonitorConfig config;
  config.warmup_steps = 3;
  config.divergence_factor = 2.0;
  TrainingMonitor monitor{config};
  // A huge spike inside warmup is tolerated (it just skews the EMA).
  EXPECT_EQ(monitor.ObserveLoss(1.0), HealthVerdict::kHealthy);
  EXPECT_EQ(monitor.ObserveLoss(100.0), HealthVerdict::kHealthy);
  // Rebuild with calm losses, then spike after warmup.
  TrainingMonitor armed{config};
  EXPECT_EQ(armed.ObserveLoss(1.0), HealthVerdict::kHealthy);
  EXPECT_EQ(armed.ObserveLoss(1.0), HealthVerdict::kHealthy);
  EXPECT_EQ(armed.ObserveLoss(1.0), HealthVerdict::kHealthy);
  EXPECT_EQ(armed.ObserveLoss(1.1), HealthVerdict::kHealthy);
  EXPECT_EQ(armed.ObserveLoss(10.0), HealthVerdict::kRollback);
}

TEST(TrainingMonitorTest, GradientsFiniteCountsSkippedSteps) {
  TrainingMonitor monitor{TrainingMonitorConfig()};
  Parameter p("w", Matrix(2, 2));
  p.grad.Fill(1.0f);
  std::vector<Parameter*> params = {&p};
  EXPECT_TRUE(monitor.GradientsFinite(params));
  EXPECT_EQ(monitor.skipped_steps(), 0);
  p.grad(0, 1) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(monitor.GradientsFinite(params));
  EXPECT_EQ(monitor.skipped_steps(), 1);
}

TEST(TrainingMonitorTest, RollbackResetsStatisticsAndTracksBudget) {
  TrainingMonitorConfig config;
  config.max_rollbacks = 1;
  TrainingMonitor monitor{config};
  EXPECT_EQ(monitor.ObserveLoss(2.0), HealthVerdict::kHealthy);
  monitor.OnRollback();
  EXPECT_EQ(monitor.rollbacks(), 1);
  EXPECT_FALSE(monitor.RollbackBudgetExhausted());
  // Loss statistics restart so retried steps re-warm the EMA.
  EXPECT_EQ(monitor.ExportState().observed, 0);
  EXPECT_EQ(monitor.ExportState().ema, 0.0);
  monitor.OnRollback();
  EXPECT_TRUE(monitor.RollbackBudgetExhausted());
}

TEST(TrainingMonitorTest, DisabledMonitorReportsEverythingHealthy) {
  TrainingMonitorConfig config;
  config.enabled = false;
  TrainingMonitor monitor{config};
  EXPECT_EQ(monitor.ObserveLoss(std::numeric_limits<double>::quiet_NaN()),
            HealthVerdict::kHealthy);
  Parameter p("w", Matrix(1, 1));
  p.grad(0, 0) = std::numeric_limits<float>::infinity();
  std::vector<Parameter*> params = {&p};
  EXPECT_TRUE(monitor.GradientsFinite(params));
  EXPECT_EQ(monitor.skipped_steps(), 0);
}

TEST(TrainingMonitorTest, StateRoundTripsThroughExportRestore) {
  TrainingMonitor monitor{TrainingMonitorConfig()};
  monitor.ObserveLoss(1.0);
  monitor.ObserveLoss(2.0);
  monitor.OnRollback();
  const TrainingMonitorState state = monitor.ExportState();
  TrainingMonitor restored{TrainingMonitorConfig()};
  restored.RestoreState(state);
  EXPECT_EQ(restored.rollbacks(), monitor.rollbacks());
  EXPECT_EQ(restored.ExportState().ema, state.ema);
  EXPECT_EQ(restored.ExportState().observed, state.observed);
}

// --- checkpoint persistence -------------------------------------------

TEST(CheckpointTest, SaveLoadRoundTripPreservesEveryField) {
  const std::string dir = FreshDir("ckpt_roundtrip");
  CheckpointOptions options;
  options.dir = dir;
  const TrainingCheckpoint original = MakeSampleCheckpoint(0xDEADBEEFu, 7);
  ASSERT_TRUE(SaveCheckpoint(original, options).ok());
  ASSERT_TRUE(std::filesystem::exists(dir + "/LATEST"));

  auto loaded = LoadCheckpointFile(CheckpointPath(dir, 7));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const TrainingCheckpoint& ckpt = loaded.value();
  EXPECT_EQ(ckpt.fingerprint, original.fingerprint);
  EXPECT_EQ(ckpt.sequence, original.sequence);
  EXPECT_EQ(ckpt.level, original.level);
  EXPECT_EQ(ckpt.sage_step, original.sage_step);

  ASSERT_EQ(ckpt.completed_levels.size(), original.completed_levels.size());
  const HignnLevel& level = ckpt.completed_levels[0];
  const HignnLevel& expected = original.completed_levels[0];
  EXPECT_EQ(level.graph.num_edges(), expected.graph.num_edges());
  EXPECT_TRUE(AllClose(level.left_embeddings, expected.left_embeddings, 0.0f));
  EXPECT_TRUE(
      AllClose(level.right_embeddings, expected.right_embeddings, 0.0f));
  EXPECT_EQ(level.left_assignment, expected.left_assignment);
  EXPECT_EQ(level.right_assignment, expected.right_assignment);
  EXPECT_EQ(level.num_left_clusters, expected.num_left_clusters);
  EXPECT_EQ(level.train_loss, expected.train_loss);

  EXPECT_EQ(ckpt.graph.num_edges(), original.graph.num_edges());
  EXPECT_DOUBLE_EQ(ckpt.graph.TotalWeight(), original.graph.TotalWeight());
  EXPECT_TRUE(AllClose(ckpt.left_features, original.left_features, 0.0f));
  EXPECT_TRUE(AllClose(ckpt.right_features, original.right_features, 0.0f));

  ASSERT_EQ(ckpt.params.size(), original.params.size());
  for (size_t i = 0; i < ckpt.params.size(); ++i) {
    EXPECT_TRUE(AllClose(ckpt.params[i], original.params[i], 0.0f));
  }
  ASSERT_EQ(ckpt.opt.tensors.size(), original.opt.tensors.size());
  for (size_t i = 0; i < ckpt.opt.tensors.size(); ++i) {
    EXPECT_TRUE(AllClose(ckpt.opt.tensors[i], original.opt.tensors[i], 0.0f));
  }
  EXPECT_EQ(ckpt.opt.steps, original.opt.steps);
  EXPECT_EQ(ckpt.learning_rate, original.learning_rate);

  for (int i = 0; i < 4; ++i) EXPECT_EQ(ckpt.rng.s[i], original.rng.s[i]);
  EXPECT_EQ(ckpt.rng.has_cached_normal, original.rng.has_cached_normal);
  EXPECT_EQ(ckpt.rng.cached_normal, original.rng.cached_normal);

  EXPECT_EQ(ckpt.tail_loss_sum, original.tail_loss_sum);
  EXPECT_EQ(ckpt.tail_count, original.tail_count);
  EXPECT_EQ(ckpt.monitor.ema, original.monitor.ema);
  EXPECT_EQ(ckpt.monitor.observed, original.monitor.observed);
  EXPECT_EQ(ckpt.monitor.rollbacks, original.monitor.rollbacks);
  EXPECT_EQ(ckpt.monitor.skipped_steps, original.monitor.skipped_steps);

  // LoadLatestCheckpoint honours the fingerprint gate.
  auto latest = LoadLatestCheckpoint(options, original.fingerprint);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest.value().sequence, 7);
  auto mismatched = LoadLatestCheckpoint(options, original.fingerprint + 1);
  EXPECT_EQ(mismatched.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, LoadLatestFromMissingDirIsNotFound) {
  CheckpointOptions options;
  options.dir = TempPath("ckpt_never_created");
  std::filesystem::remove_all(options.dir);
  auto result = LoadLatestCheckpoint(options, 123);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, PruningKeepsOnlyTheNewestFiles) {
  const std::string dir = FreshDir("ckpt_prune");
  CheckpointOptions options;
  options.dir = dir;
  options.keep_last = 2;
  for (int64_t seq = 0; seq < 5; ++seq) {
    ASSERT_TRUE(SaveCheckpoint(MakeSampleCheckpoint(1, seq), options).ok());
  }
  EXPECT_EQ(CountCheckpointFiles(dir), 2);
  EXPECT_FALSE(std::filesystem::exists(CheckpointPath(dir, 2)));
  ASSERT_TRUE(std::filesystem::exists(CheckpointPath(dir, 4)));
  auto latest = LoadLatestCheckpoint(options, 1);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().sequence, 4);
}

// --- crash-and-resume integration -------------------------------------

// The core ISSUE contract: kill training at an injected fault, rerun with
// --resume, and the final model is bitwise identical to an uninterrupted
// run. Failed saves cover the initial boundary save (1), a mid-level save
// inside level 1 (2), the level-2 boundary save (4), and a mid-level save
// inside level 2 (6); save order for this config is
// boundary(1), mid(5), mid(10), boundary(2), mid(5), mid(10), boundary(3).
// Each save probes `checkpoint.saved` twice (crash probe, then the fail
// check), so failing the Nth save means arming hit 2N.
TEST(CheckpointTest, ResumeAfterInjectedFailureIsBitwiseIdentical) {
  FaultGuard guard;
  auto dataset =
      SyntheticDataset::Generate(SyntheticConfig::Tiny()).ValueOrDie();
  const BipartiteGraph graph = dataset.BuildTrainGraph();
  const HignnConfig config = SmallConfig();
  const HignnModel reference =
      Hignn::Fit(graph, dataset.user_features(), dataset.item_features(),
                 config)
          .ValueOrDie();

  for (int fail_hit : {1, 2, 4, 6}) {
    SCOPED_TRACE(fail_hit);
    const std::string dir =
        FreshDir("ckpt_resume_" + std::to_string(fail_hit));
    CheckpointOptions options;
    options.dir = dir;
    options.step_interval = 5;

    fault::Configure("checkpoint.saved=fail@" + std::to_string(2 * fail_hit));
    auto interrupted =
        Hignn::Fit(graph, dataset.user_features(), dataset.item_features(),
                   config, options, TrainingMonitorConfig());
    fault::Configure("");
    ASSERT_FALSE(interrupted.ok());
    EXPECT_EQ(interrupted.status().code(), StatusCode::kInternal);

    auto resumed =
        Hignn::Fit(graph, dataset.user_features(), dataset.item_features(),
                   config, options, TrainingMonitorConfig());
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    ExpectModelsBitwiseEqual(resumed.value(), reference);
  }
}

TEST(CheckpointTest, FinishedRunResumesWithoutRetraining) {
  FaultGuard guard;
  auto dataset =
      SyntheticDataset::Generate(SyntheticConfig::Tiny()).ValueOrDie();
  const BipartiteGraph graph = dataset.BuildTrainGraph();
  const HignnConfig config = SmallConfig();
  const std::string dir = FreshDir("ckpt_finished");
  CheckpointOptions options;
  options.dir = dir;

  auto first = Hignn::Fit(graph, dataset.user_features(),
                          dataset.item_features(), config, options,
                          TrainingMonitorConfig());
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Any save attempt on the rerun would trip this fault (hit 2 is the
  // fail check of the first save); a finished run must come back from the
  // final checkpoint without training or saving.
  fault::Configure("checkpoint.saved=fail@2");
  auto second = Hignn::Fit(graph, dataset.user_features(),
                           dataset.item_features(), config, options,
                           TrainingMonitorConfig());
  EXPECT_EQ(fault::HitCount("checkpoint.saved"), 0);  // nothing was saved
  fault::Configure("");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ExpectModelsBitwiseEqual(second.value(), first.value());
}

TEST(CheckpointTest, FingerprintMismatchStartsFresh) {
  auto dataset =
      SyntheticDataset::Generate(SyntheticConfig::Tiny()).ValueOrDie();
  const BipartiteGraph graph = dataset.BuildTrainGraph();
  const HignnConfig config = SmallConfig();
  const std::string dir = FreshDir("ckpt_fingerprint");
  CheckpointOptions options;
  options.dir = dir;

  ASSERT_TRUE(Hignn::Fit(graph, dataset.user_features(),
                         dataset.item_features(), config, options,
                         TrainingMonitorConfig())
                  .ok());

  // Same directory, different seed: the stale checkpoints must be ignored
  // and the result must match a from-scratch fit with the new seed.
  HignnConfig reseeded = config;
  reseeded.seed = 4321;
  const HignnModel fresh =
      Hignn::Fit(graph, dataset.user_features(), dataset.item_features(),
                 reseeded)
          .ValueOrDie();
  auto resumed = Hignn::Fit(graph, dataset.user_features(),
                            dataset.item_features(), reseeded, options,
                            TrainingMonitorConfig());
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectModelsBitwiseEqual(resumed.value(), fresh);
}

TEST(CheckpointTest, RollbackBudgetExhaustionAbortsTraining) {
  auto dataset =
      SyntheticDataset::Generate(SyntheticConfig::Tiny()).ValueOrDie();
  const HignnConfig config = SmallConfig();
  TrainingMonitorConfig monitor;
  monitor.warmup_steps = 2;
  monitor.divergence_factor = 1e-9;  // every post-warmup loss "diverges"
  monitor.max_rollbacks = 1;
  auto result =
      Hignn::Fit(dataset.BuildTrainGraph(), dataset.user_features(),
                 dataset.item_features(), config, CheckpointOptions(), monitor);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace hignn
