// Compile-fail probe for the thread-safety annotations (see the
// lint.tsa_compile_fail test in tests/CMakeLists.txt, which builds this
// TU under -Wthread-safety -Werror and expects the build to FAIL).
//
// The mistake below — writing a HIGNN_GUARDED_BY field without holding
// its mutex — is exactly what the annotations in
// src/util/thread_annotations.h exist to catch. If Clang ever compiles
// this file cleanly, the macros have stopped expanding to real
// attributes and the whole concurrency contract is silently off.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void SafeIncrement() {
    hignn::MutexLock lock(mu_);
    value_ += 1;  // fine: mu_ provably held
  }

  void UnsafeIncrement() {
    value_ += 1;  // BAD: mu_ not held — must not compile under Clang
  }

 private:
  hignn::Mutex mu_;
  int value_ HIGNN_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.SafeIncrement();
  counter.UnsafeIncrement();
  return 0;
}
