#include "eval/ab_test.h"

#include <gtest/gtest.h>

namespace hignn {
namespace {

class AbTestFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticConfig config = SyntheticConfig::Tiny();
    config.num_users = 300;
    config.num_items = 150;
    dataset_ = new SyntheticDataset(
        SyntheticDataset::Generate(config).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static AbTestConfig SmallConfig() {
    AbTestConfig config;
    config.visits_per_day = 2000;
    config.num_days = 2;
    config.list_size = 6;
    config.candidate_pool = 20;
    return config;
  }

  static SyntheticDataset* dataset_;
};

SyntheticDataset* AbTestFixture::dataset_ = nullptr;

TEST_F(AbTestFixture, ProducesPerDayMetrics) {
  AbTestSimulator simulator(dataset_, SmallConfig());
  auto days = simulator.Run(
      [](int32_t, int32_t) { return 0.0; });  // constant scorer
  ASSERT_TRUE(days.ok());
  ASSERT_EQ(days.value().size(), 2u);
  for (const auto& day : days.value()) {
    EXPECT_EQ(day.visits, 2000);
    EXPECT_GT(day.clicks, 0);
    EXPECT_GE(day.clicks, day.transactions);
    EXPECT_GE(day.clicks, day.unique_visitors);
    EXPECT_GT(day.unique_visitors, 0);
    EXPECT_GT(day.Ctr(), 0.0);
    EXPECT_GT(day.Cvr(), 0.0);
    EXPECT_LE(day.Cvr(), 1.0);
  }
}

TEST_F(AbTestFixture, DeterministicForSameScorer) {
  AbTestSimulator simulator(dataset_, SmallConfig());
  auto scorer = [this](int32_t u, int32_t i) {
    return dataset_->TrueAffinity(u, i);
  };
  auto a = simulator.Run(scorer).ValueOrDie();
  auto b = simulator.Run(scorer).ValueOrDie();
  for (size_t d = 0; d < a.size(); ++d) {
    EXPECT_EQ(a[d].clicks, b[d].clicks);
    EXPECT_EQ(a[d].transactions, b[d].transactions);
    EXPECT_EQ(a[d].unique_visitors, b[d].unique_visitors);
  }
}

TEST_F(AbTestFixture, OracleScorerBeatsRandomScorer) {
  AbTestSimulator simulator(dataset_, SmallConfig());
  auto oracle = simulator
                    .Run([this](int32_t u, int32_t i) {
                      return dataset_->PurchaseProbability(u, i);
                    })
                    .ValueOrDie();
  Rng noise(5);
  auto random = simulator
                    .Run([&noise](int32_t, int32_t) {
                      return noise.Uniform();
                    })
                    .ValueOrDie();
  int64_t oracle_cnt = 0;
  int64_t random_cnt = 0;
  int64_t oracle_clicks = 0;
  int64_t random_clicks = 0;
  for (size_t d = 0; d < oracle.size(); ++d) {
    oracle_cnt += oracle[d].transactions;
    random_cnt += random[d].transactions;
    oracle_clicks += oracle[d].clicks;
    random_clicks += random[d].clicks;
  }
  EXPECT_GT(oracle_cnt, random_cnt);
  // Ranking by purchase probability also lifts clicks (affinity enters
  // both the click and purchase models).
  EXPECT_GT(oracle_clicks, random_clicks);
}

TEST_F(AbTestFixture, PairedDesignSharesVisits) {
  // With model_blend = 0 the scorer is ignored entirely: both arms must
  // produce byte-identical metrics (proves the CRN pairing).
  AbTestConfig config = SmallConfig();
  config.model_blend = 0.0;
  AbTestSimulator simulator(dataset_, config);
  auto a = simulator.Run([](int32_t, int32_t) { return 1.0; }).ValueOrDie();
  auto b = simulator.Run([](int32_t u, int32_t i) {
                return static_cast<double>(u * 31 + i);
              })
               .ValueOrDie();
  for (size_t d = 0; d < a.size(); ++d) {
    EXPECT_EQ(a[d].clicks, b[d].clicks);
    EXPECT_EQ(a[d].transactions, b[d].transactions);
  }
}

TEST_F(AbTestFixture, RejectsBadInput) {
  AbTestSimulator simulator(dataset_, SmallConfig());
  EXPECT_FALSE(simulator.Run(nullptr).ok());
  AbTestConfig bad = SmallConfig();
  bad.visits_per_day = 0;
  AbTestSimulator broken(dataset_, bad);
  EXPECT_FALSE(broken.Run([](int32_t, int32_t) { return 0.0; }).ok());
}

}  // namespace
}  // namespace hignn
