#include "predict/experiment.h"

#include <cmath>

#include <gtest/gtest.h>

#include "predict/cvr_model.h"
#include "predict/features.h"

namespace hignn {
namespace {

class PredictFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticConfig data_config = SyntheticConfig::Tiny();
    data_config.num_users = 400;
    data_config.num_items = 160;
    data_config.num_days = 6;
    data_config.mean_clicks_per_user_day = 3.0;
    dataset_ = new SyntheticDataset(
        SyntheticDataset::Generate(data_config).ValueOrDie());

    CvrExperimentConfig config;
    config.hignn.levels = 2;
    config.hignn.sage.dims = {8, 8};
    config.hignn.sage.fanouts = {5, 3};
    config.hignn.sage.train_steps = 60;
    config.hignn.min_clusters = 2;
    config.cvr.hidden = {32, 16};
    config.cvr.epochs = 3;
    config.cvr.batch_size = 256;
    experiment_ = new CvrExperiment(
        CvrExperiment::Prepare(*dataset_, config).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete experiment_;
    delete dataset_;
    experiment_ = nullptr;
    dataset_ = nullptr;
  }

  static SyntheticDataset* dataset_;
  static CvrExperiment* experiment_;
};

SyntheticDataset* PredictFixture::dataset_ = nullptr;
CvrExperiment* PredictFixture::experiment_ = nullptr;

// ------------------------------------------------------ CvrFeatureBuilder --

TEST_F(PredictFixture, FeatureDimsPerSpec) {
  const int32_t d = experiment_->model().level_dim();
  const int32_t base = 9 + 3 + 5;  // profile + user stats + item stats

  auto dim_of = [&](const FeatureSpec& spec) {
    return CvrFeatureBuilder::Create(dataset_, &experiment_->model(), spec)
        .ValueOrDie()
        .dim();
  };
  EXPECT_EQ(dim_of(FeatureSpec::Din()), base);
  EXPECT_EQ(dim_of(FeatureSpec::Ge()), base + 2 * d + 1);
  EXPECT_EQ(dim_of(FeatureSpec::HupOnly(2)), base + 2 * d);
  EXPECT_EQ(dim_of(FeatureSpec::HiaOnly(2)), base + 2 * d);
  EXPECT_EQ(dim_of(FeatureSpec::HiGnn(2)), base + 4 * d + 2);
  EXPECT_EQ(dim_of(FeatureSpec::Cgnn()), base + 2 * d);
}

TEST_F(PredictFixture, CreateValidatesSpec) {
  // Hierarchical features without a model are rejected.
  EXPECT_FALSE(
      CvrFeatureBuilder::Create(dataset_, nullptr, FeatureSpec::Ge()).ok());
  // DIN works without a model.
  EXPECT_TRUE(
      CvrFeatureBuilder::Create(dataset_, nullptr, FeatureSpec::Din()).ok());
  // More levels than the model has.
  EXPECT_FALSE(CvrFeatureBuilder::Create(dataset_, &experiment_->model(),
                                         FeatureSpec::HiGnn(7))
                   .ok());
  EXPECT_FALSE(CvrFeatureBuilder::Create(nullptr, nullptr,
                                         FeatureSpec::Din())
                   .ok());
}

TEST_F(PredictFixture, BatchRowsMatchSamples) {
  auto features = CvrFeatureBuilder::Create(dataset_, &experiment_->model(),
                                            FeatureSpec::HiGnn(2))
                      .ValueOrDie();
  const auto& samples = experiment_->samples().train;
  const Matrix batch = features.BuildBatch(samples, 2, 7);
  EXPECT_EQ(batch.rows(), 5u);
  EXPECT_EQ(batch.cols(), static_cast<size_t>(features.dim()));
  // Same sample -> identical rows regardless of batch position.
  const Matrix full = features.BuildAll(samples);
  for (size_t c = 0; c < batch.cols(); ++c) {
    EXPECT_FLOAT_EQ(batch(0, c), full(2, c));
  }
}

TEST_F(PredictFixture, MatchFeatureIsDotProduct) {
  FeatureSpec spec = FeatureSpec::HiGnn(1);
  auto features =
      CvrFeatureBuilder::Create(dataset_, &experiment_->model(), spec)
          .ValueOrDie();
  const LabeledSample sample{3, 5, 0.0f};
  const Matrix row = features.BuildBatch({sample}, 0, 1);
  const int32_t d = experiment_->model().level_dim();
  double expected = 0.0;
  for (int32_t c = 0; c < d; ++c) {
    expected += static_cast<double>(row(0, static_cast<size_t>(c))) *
                row(0, static_cast<size_t>(d + c));
  }
  EXPECT_NEAR(row(0, static_cast<size_t>(2 * d)), expected, 1e-3);
}

// --------------------------------------------------------------- CvrModel --

TEST_F(PredictFixture, TrainingBeatsChance) {
  auto result = experiment_->RunVariant("HiGNN", FeatureSpec::HiGnn(2));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().test_auc, 0.55);
  EXPECT_LT(result.value().train_loss, 0.7);
}

TEST_F(PredictFixture, AllPaperVariantsRun) {
  for (const auto& [name, spec] : CvrExperiment::PaperVariants(2)) {
    auto result = experiment_->RunVariant(name, spec);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    EXPECT_GT(result.value().test_auc, 0.5) << name;
    EXPECT_LT(result.value().test_auc, 1.0) << name;
  }
}

TEST_F(PredictFixture, PredictionsAreProbabilities) {
  auto features = CvrFeatureBuilder::Create(dataset_, nullptr,
                                            FeatureSpec::Din())
                      .ValueOrDie();
  auto model = CvrModel::Create(features.dim(), CvrModelConfig{}).ValueOrDie();
  ASSERT_TRUE(model.Train(features, experiment_->samples().train).ok());
  auto predictions = model.Predict(features, experiment_->samples().test);
  ASSERT_TRUE(predictions.ok());
  ASSERT_EQ(predictions.value().size(), experiment_->samples().test.size());
  for (float p : predictions.value()) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(CvrModelTest, CreateValidatesConfig) {
  CvrModelConfig config;
  EXPECT_FALSE(CvrModel::Create(0, config).ok());
  config.hidden.clear();
  EXPECT_FALSE(CvrModel::Create(8, config).ok());
  config = CvrModelConfig{};
  config.hidden = {0};
  EXPECT_FALSE(CvrModel::Create(8, config).ok());
  config = CvrModelConfig{};
  config.epochs = 0;
  EXPECT_FALSE(CvrModel::Create(8, config).ok());
}

TEST(CvrModelTest, RejectsDimMismatch) {
  auto dataset =
      SyntheticDataset::Generate(SyntheticConfig::Tiny()).ValueOrDie();
  auto features =
      CvrFeatureBuilder::Create(&dataset, nullptr, FeatureSpec::Din())
          .ValueOrDie();
  auto model =
      CvrModel::Create(features.dim() + 1, CvrModelConfig{}).ValueOrDie();
  const SampleSet samples = BuildSamples(dataset, false, 1);
  EXPECT_FALSE(model.Train(features, samples.train).ok());
  EXPECT_FALSE(model.Predict(features, samples.test).ok());
}

TEST(CvrModelTest, MaxTrainSamplesCapsEpoch) {
  auto dataset =
      SyntheticDataset::Generate(SyntheticConfig::Tiny()).ValueOrDie();
  auto features =
      CvrFeatureBuilder::Create(&dataset, nullptr, FeatureSpec::Din())
          .ValueOrDie();
  CvrModelConfig config;
  config.hidden = {8};
  config.epochs = 1;
  config.max_train_samples = 32;
  config.batch_size = 16;
  auto model = CvrModel::Create(features.dim(), config).ValueOrDie();
  const SampleSet samples = BuildSamples(dataset, false, 1);
  auto loss = model.Train(features, samples.train);
  ASSERT_TRUE(loss.ok());
  EXPECT_TRUE(std::isfinite(loss.value()));
}

}  // namespace
}  // namespace hignn
