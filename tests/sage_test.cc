#include "sage/bipartite_sage.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/metrics.h"
#include "nn/optimizer.h"

namespace hignn {
namespace {

// Small planted two-community bipartite graph: users 0..19 click items
// 0..9, users 20..39 click items 10..19, plus weak noise edges.
struct PlantedWorld {
  BipartiteGraph graph;
  Matrix user_features;
  Matrix item_features;
};

PlantedWorld MakePlanted(uint64_t seed = 3) {
  Rng rng(seed);
  BipartiteGraphBuilder builder(40, 20);
  for (int32_t u = 0; u < 40; ++u) {
    const int32_t base = u < 20 ? 0 : 10;
    for (int k = 0; k < 6; ++k) {
      const int32_t item = base + static_cast<int32_t>(rng.UniformInt(10));
      EXPECT_TRUE(builder.AddEdge(u, item, 1.0f).ok());
    }
    if (rng.Bernoulli(0.15)) {
      EXPECT_TRUE(
          builder.AddEdge(u, static_cast<int32_t>(rng.UniformInt(20)), 1.0f)
              .ok());
    }
  }
  PlantedWorld world{builder.Build(), Matrix(40, 6), Matrix(20, 6)};
  world.user_features.FillNormal(rng, 0.5f);
  world.item_features.FillNormal(rng, 0.5f);
  return world;
}

BipartiteSageConfig SmallConfig() {
  BipartiteSageConfig config;
  config.dims = {8, 8};
  config.fanouts = {5, 3};
  config.train_steps = 120;
  config.batch_size = 64;
  config.seed = 11;
  return config;
}

TEST(BipartiteSageTest, CreateValidatesConfig) {
  BipartiteSageConfig config = SmallConfig();
  EXPECT_TRUE(BipartiteSage::Create(config, 6, 6).ok());
  config.dims.clear();
  EXPECT_FALSE(BipartiteSage::Create(config, 6, 6).ok());
  config = SmallConfig();
  config.fanouts = {5};
  EXPECT_FALSE(BipartiteSage::Create(config, 6, 6).ok());
  config = SmallConfig();
  config.dims = {0, 8};
  EXPECT_FALSE(BipartiteSage::Create(config, 6, 6).ok());
  config = SmallConfig();
  EXPECT_FALSE(BipartiteSage::Create(config, 0, 6).ok());
  config.shared_weights = true;
  EXPECT_FALSE(BipartiteSage::Create(config, 6, 7).ok());
  EXPECT_TRUE(BipartiteSage::Create(config, 6, 6).ok());
}

TEST(BipartiteSageTest, TrainingReducesLoss) {
  PlantedWorld world = MakePlanted();
  auto sage = BipartiteSage::Create(SmallConfig(), 6, 6).ValueOrDie();
  Rng rng(5);
  Adam optimizer(3e-3f);
  double first = 0.0;
  double last = 0.0;
  for (int step = 0; step < 120; ++step) {
    auto loss = sage.TrainStep(world.graph, world.user_features,
                               world.item_features, optimizer, rng);
    ASSERT_TRUE(loss.ok()) << loss.status().ToString();
    if (step == 0) first = loss.value();
    last = loss.value();
  }
  EXPECT_LT(last, first * 0.9);
}

TEST(BipartiteSageTest, EmbeddingsSeparateCommunities) {
  PlantedWorld world = MakePlanted();
  auto sage = BipartiteSage::Create(SmallConfig(), 6, 6).ValueOrDie();
  ASSERT_TRUE(
      sage.Train(world.graph, world.user_features, world.item_features).ok());
  auto embeddings =
      sage.EmbedAll(world.graph, world.user_features, world.item_features)
          .ValueOrDie();

  // User-user cosine should separate same- vs cross-community pairs.
  std::vector<float> scores;
  std::vector<float> labels;
  for (int32_t a = 0; a < 40; ++a) {
    for (int32_t b = a + 1; b < 40; ++b) {
      scores.push_back(static_cast<float>(
          RowDot(embeddings.left, static_cast<size_t>(a), embeddings.left,
                 static_cast<size_t>(b))));
      labels.push_back((a < 20) == (b < 20) ? 1.0f : 0.0f);
    }
  }
  const double auc = ComputeAuc(scores, labels).ValueOrDie();
  EXPECT_GT(auc, 0.85);
}

TEST(BipartiteSageTest, EdgeVsNonEdgeSeparation) {
  PlantedWorld world = MakePlanted();
  // The dot scorer trains z_u . z_i directly, so raw dot products are the
  // meaningful similarity (under the MLP scorers the sign of the raw dot
  // is arbitrary — only the scorer output is calibrated).
  BipartiteSageConfig config = SmallConfig();
  config.scorer = EdgeScorer::kDot;
  auto sage = BipartiteSage::Create(config, 6, 6).ValueOrDie();
  ASSERT_TRUE(
      sage.Train(world.graph, world.user_features, world.item_features).ok());
  auto embeddings =
      sage.EmbedAll(world.graph, world.user_features, world.item_features)
          .ValueOrDie();
  std::vector<float> scores;
  std::vector<float> labels;
  for (int32_t u = 0; u < 40; ++u) {
    // Community items (mostly edges) vs the other community (non-edges).
    for (int32_t i = 0; i < 20; ++i) {
      scores.push_back(static_cast<float>(RowDot(
          embeddings.left, static_cast<size_t>(u), embeddings.right,
          static_cast<size_t>(i))));
      const bool same_side = (u < 20) == (i < 10);
      labels.push_back(same_side ? 1.0f : 0.0f);
    }
  }
  EXPECT_GT(ComputeAuc(scores, labels).ValueOrDie(), 0.85);
}

TEST(BipartiteSageTest, EmbedAllShapes) {
  PlantedWorld world = MakePlanted();
  BipartiteSageConfig config = SmallConfig();
  config.train_steps = 5;
  auto sage = BipartiteSage::Create(config, 6, 6).ValueOrDie();
  ASSERT_TRUE(
      sage.Train(world.graph, world.user_features, world.item_features).ok());
  auto embeddings =
      sage.EmbedAll(world.graph, world.user_features, world.item_features)
          .ValueOrDie();
  EXPECT_EQ(embeddings.left.rows(), 40u);
  EXPECT_EQ(embeddings.left.cols(), 8u);
  EXPECT_EQ(embeddings.right.rows(), 20u);
  EXPECT_EQ(embeddings.right.cols(), 8u);
}

TEST(BipartiteSageTest, EmbedTargetsAlignsWithTargets) {
  PlantedWorld world = MakePlanted();
  BipartiteSageConfig config = SmallConfig();
  config.train_steps = 5;
  auto sage = BipartiteSage::Create(config, 6, 6).ValueOrDie();
  ASSERT_TRUE(
      sage.Train(world.graph, world.user_features, world.item_features).ok());
  Rng rng(7);
  auto subset = sage.EmbedTargets(world.graph, world.user_features,
                                  world.item_features, {3, 3, 17}, {5}, rng)
                    .ValueOrDie();
  ASSERT_EQ(subset.left.rows(), 3u);
  ASSERT_EQ(subset.right.rows(), 1u);
  // Duplicate targets produce identical rows.
  for (size_t c = 0; c < subset.left.cols(); ++c) {
    EXPECT_FLOAT_EQ(subset.left(0, c), subset.left(1, c));
  }
}

TEST(BipartiteSageTest, NormalizeOutputYieldsUnitRows) {
  PlantedWorld world = MakePlanted();
  BipartiteSageConfig config = SmallConfig();
  config.normalize_output = true;
  config.train_steps = 5;
  auto sage = BipartiteSage::Create(config, 6, 6).ValueOrDie();
  ASSERT_TRUE(
      sage.Train(world.graph, world.user_features, world.item_features).ok());
  auto embeddings =
      sage.EmbedAll(world.graph, world.user_features, world.item_features)
          .ValueOrDie();
  for (size_t r = 0; r < embeddings.left.rows(); ++r) {
    double norm = 0;
    for (size_t c = 0; c < embeddings.left.cols(); ++c) {
      norm += static_cast<double>(embeddings.left(r, c)) *
              embeddings.left(r, c);
    }
    EXPECT_NEAR(norm, 1.0, 1e-3);
  }
}

TEST(BipartiteSageTest, IsolatedVerticesGetFiniteEmbeddings) {
  BipartiteGraphBuilder builder(4, 4);
  ASSERT_TRUE(builder.AddEdge(0, 0).ok());
  ASSERT_TRUE(builder.AddEdge(1, 1).ok());
  BipartiteGraph graph = builder.Build();  // vertices 2, 3 isolated
  Matrix uf(4, 3);
  Matrix itf(4, 3);
  Rng rng(9);
  uf.FillNormal(rng);
  itf.FillNormal(rng);
  BipartiteSageConfig config = SmallConfig();
  config.train_steps = 10;
  config.batch_size = 2;
  auto sage = BipartiteSage::Create(config, 3, 3).ValueOrDie();
  ASSERT_TRUE(sage.Train(graph, uf, itf).ok());
  auto embeddings = sage.EmbedAll(graph, uf, itf).ValueOrDie();
  for (size_t i = 0; i < embeddings.left.size(); ++i) {
    EXPECT_TRUE(std::isfinite(embeddings.left.data()[i]));
  }
  for (size_t i = 0; i < embeddings.right.size(); ++i) {
    EXPECT_TRUE(std::isfinite(embeddings.right.data()[i]));
  }
}

TEST(BipartiteSageTest, TrainStepRejectsMismatchedFeatures) {
  PlantedWorld world = MakePlanted();
  auto sage = BipartiteSage::Create(SmallConfig(), 6, 6).ValueOrDie();
  Rng rng(1);
  Adam optimizer(1e-3f);
  Matrix wrong(7, 6);
  EXPECT_FALSE(sage.TrainStep(world.graph, wrong, world.item_features,
                              optimizer, rng)
                   .ok());
}

TEST(BipartiteSageTest, SharedWeightsHalvesTowerParameters) {
  BipartiteSageConfig config = SmallConfig();
  auto two_tower = BipartiteSage::Create(config, 6, 6).ValueOrDie();
  config.shared_weights = true;
  auto shared = BipartiteSage::Create(config, 6, 6).ValueOrDie();
  EXPECT_LT(shared.Params().size(), two_tower.Params().size());
}

TEST(BipartiteSageTest, WeightedAggregatorTrains) {
  PlantedWorld world = MakePlanted();
  BipartiteSageConfig config = SmallConfig();
  config.weighted_aggregator = true;
  config.train_steps = 30;
  auto sage = BipartiteSage::Create(config, 6, 6).ValueOrDie();
  auto loss =
      sage.Train(world.graph, world.user_features, world.item_features);
  ASSERT_TRUE(loss.ok());
  EXPECT_TRUE(std::isfinite(loss.value()));
}

class ScorerVariantTest : public ::testing::TestWithParam<EdgeScorer> {};

TEST_P(ScorerVariantTest, AllScorersTrainToFiniteLoss) {
  PlantedWorld world = MakePlanted();
  BipartiteSageConfig config = SmallConfig();
  config.scorer = GetParam();
  config.train_steps = 40;
  auto sage = BipartiteSage::Create(config, 6, 6).ValueOrDie();
  auto loss =
      sage.Train(world.graph, world.user_features, world.item_features);
  ASSERT_TRUE(loss.ok());
  EXPECT_TRUE(std::isfinite(loss.value()));
  EXPECT_GT(loss.value(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllScorers, ScorerVariantTest,
                         ::testing::Values(EdgeScorer::kConcatMlp,
                                           EdgeScorer::kHadamardMlp,
                                           EdgeScorer::kDot),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case EdgeScorer::kConcatMlp:
                               return "ConcatMlp";
                             case EdgeScorer::kHadamardMlp:
                               return "HadamardMlp";
                             case EdgeScorer::kDot:
                               return "Dot";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace hignn
