// Property-based tests: randomized inputs, invariant checks, sweeping
// seeds/shapes with parameterized gtest.

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "cluster/kmeans.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "graph/bipartite_graph.h"
#include "graph/coarsen.h"
#include "nn/grad_check.h"
#include "nn/tape.h"
#include "util/rng.h"

namespace hignn {
namespace {

// ------------------------------------------------------------------------
// Random computation graphs must back-propagate correctly: build a random
// op pipeline from a single differentiable input, then finite-difference
// check the gradient. Sweeps seeds via TEST_P.
// ------------------------------------------------------------------------

class RandomGraphGradTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraphGradTest, RandomOpPipelineGradCheck) {
  Rng rng(GetParam());
  const size_t rows = 2 + rng.UniformInt(4);
  const size_t cols = 2 + rng.UniformInt(4);
  Matrix point(rows, cols);
  point.FillNormal(rng, 1.0f);
  // Keep LeakyReLU inputs away from the kink for finite differences.
  for (size_t i = 0; i < point.size(); ++i) {
    if (std::fabs(point.data()[i]) < 0.05f) point.data()[i] += 0.2f;
  }

  // Pre-draw the random choices so both evaluations build the same graph.
  std::vector<int> ops;
  for (int k = 0; k < 5; ++k) ops.push_back(static_cast<int>(rng.UniformInt(6)));
  Matrix mate(rows, cols);
  mate.FillNormal(rng, 0.7f);
  Matrix weight(cols, cols);
  weight.FillNormal(rng, 0.5f);
  std::vector<int32_t> gather;
  for (size_t r = 0; r < rows; ++r) {
    gather.push_back(static_cast<int32_t>(rng.UniformInt(rows)));
  }

  auto build = [&](Tape& tape, VarId x) {
    VarId h = x;
    for (int op : ops) {
      switch (op) {
        case 0:
          h = tape.Tanh(h);
          break;
        case 1:
          h = tape.Add(h, tape.Input(mate));
          break;
        case 2:
          h = tape.Mul(h, tape.Input(mate));
          break;
        case 3:
          h = tape.MatMul(h, tape.Input(weight));
          break;
        case 4:
          h = tape.GatherRows(h, gather);
          break;
        case 5:
          h = tape.ScalarMul(h, 0.7f);
          break;
      }
    }
    return tape.MeanAll(tape.Mul(h, h));
  };

  auto loss_fn = [&](const Matrix& p) {
    Tape tape;
    VarId x = tape.Input(p, true);
    return static_cast<double>(tape.value(build(tape, x))(0, 0));
  };
  Tape tape;
  VarId x = tape.Input(point, true);
  VarId loss = build(tape, x);
  tape.Backward(loss);
  const GradCheckResult result = CheckGradient(loss_fn, point, tape.grad(x));
  EXPECT_TRUE(result.passed)
      << "seed=" << GetParam() << " abs=" << result.max_abs_error
      << " rel=" << result.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphGradTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12));

// ------------------------------------------------------------------------
// Coarsening invariants on random graphs: total weight conserved, shapes
// correct, result validates — for any assignment.
// ------------------------------------------------------------------------

class RandomCoarsenTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomCoarsenTest, InvariantsHold) {
  Rng rng(GetParam());
  const int32_t left = 10 + static_cast<int32_t>(rng.UniformInt(40));
  const int32_t right = 10 + static_cast<int32_t>(rng.UniformInt(40));
  BipartiteGraphBuilder builder(left, right);
  const int edges = 30 + static_cast<int>(rng.UniformInt(100));
  for (int e = 0; e < edges; ++e) {
    ASSERT_TRUE(builder
                    .AddEdge(static_cast<int32_t>(rng.UniformInt(left)),
                             static_cast<int32_t>(rng.UniformInt(right)),
                             static_cast<float>(rng.Uniform(0.1, 3.0)))
                    .ok());
  }
  const BipartiteGraph graph = builder.Build();
  ASSERT_TRUE(graph.Validate().ok());

  Matrix le(static_cast<size_t>(left), 4);
  Matrix re(static_cast<size_t>(right), 4);
  le.FillNormal(rng);
  re.FillNormal(rng);
  const int32_t ku = 2 + static_cast<int32_t>(rng.UniformInt(5));
  const int32_t ki = 2 + static_cast<int32_t>(rng.UniformInt(5));
  std::vector<int32_t> la(static_cast<size_t>(left));
  std::vector<int32_t> ra(static_cast<size_t>(right));
  for (auto& a : la) a = static_cast<int32_t>(rng.UniformInt(ku));
  for (auto& a : ra) a = static_cast<int32_t>(rng.UniformInt(ki));

  auto coarse = CoarsenBipartiteGraph(graph, le, re, la, ku, ra, ki);
  ASSERT_TRUE(coarse.ok());
  EXPECT_EQ(coarse.value().graph.num_left(), ku);
  EXPECT_EQ(coarse.value().graph.num_right(), ki);
  EXPECT_TRUE(coarse.value().graph.Validate().ok());
  EXPECT_NEAR(coarse.value().graph.TotalWeight(), graph.TotalWeight(),
              1e-3 * graph.TotalWeight());
  EXPECT_LE(coarse.value().graph.num_edges(), graph.num_edges());
  EXPECT_LE(coarse.value().graph.num_edges(),
            static_cast<int64_t>(ku) * ki);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCoarsenTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

// ------------------------------------------------------------------------
// EdgeAt must agree with the materialized edge list for arbitrary graphs
// (including isolated vertices and heavy duplication).
// ------------------------------------------------------------------------

class EdgeAtPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EdgeAtPropertyTest, MatchesEdgeList) {
  Rng rng(GetParam());
  const int32_t left = 5 + static_cast<int32_t>(rng.UniformInt(30));
  const int32_t right = 5 + static_cast<int32_t>(rng.UniformInt(30));
  BipartiteGraphBuilder builder(left, right);
  const int edges = static_cast<int>(rng.UniformInt(120));
  for (int e = 0; e < edges; ++e) {
    ASSERT_TRUE(builder
                    .AddEdge(static_cast<int32_t>(rng.UniformInt(left)),
                             static_cast<int32_t>(rng.UniformInt(right)))
                    .ok());
  }
  const BipartiteGraph graph = builder.Build();
  const auto list = graph.Edges();
  ASSERT_EQ(static_cast<int64_t>(list.size()), graph.num_edges());
  for (int64_t k = 0; k < graph.num_edges(); ++k) {
    const WeightedEdge e = graph.EdgeAt(k);
    EXPECT_EQ(e.u, list[static_cast<size_t>(k)].u);
    EXPECT_EQ(e.i, list[static_cast<size_t>(k)].i);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeAtPropertyTest,
                         ::testing::Values(31, 32, 33, 34, 35, 36));

// ------------------------------------------------------------------------
// AUC properties: shift/scale invariance, label-flip symmetry, and
// agreement with a brute-force pairwise count.
// ------------------------------------------------------------------------

class AucPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AucPropertyTest, MatchesBruteForceAndSymmetries) {
  Rng rng(GetParam());
  const size_t n = 20 + rng.UniformInt(60);
  std::vector<float> scores(n);
  std::vector<float> labels(n);
  for (size_t i = 0; i < n; ++i) {
    // Quantized scores so ties actually occur.
    scores[i] = static_cast<float>(rng.UniformInt(10)) / 10.0f;
    labels[i] = rng.Bernoulli(0.4) ? 1.0f : 0.0f;
  }
  // Ensure both classes appear.
  labels[0] = 1.0f;
  labels[1] = 0.0f;

  // Brute force with midrank tie handling.
  double wins = 0.0;
  int64_t pairs = 0;
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] < 0.5f) continue;
    for (size_t j = 0; j < n; ++j) {
      if (labels[j] > 0.5f) continue;
      ++pairs;
      if (scores[i] > scores[j]) {
        wins += 1.0;
      } else if (scores[i] == scores[j]) {
        wins += 0.5;
      }
    }
  }
  const double brute = wins / static_cast<double>(pairs);
  const double fast = ComputeAuc(scores, labels).ValueOrDie();
  EXPECT_NEAR(fast, brute, 1e-9);

  // Monotone transform invariance.
  std::vector<float> shifted(n);
  for (size_t i = 0; i < n; ++i) shifted[i] = 3.0f * scores[i] - 7.0f;
  EXPECT_NEAR(ComputeAuc(shifted, labels).ValueOrDie(), fast, 1e-9);

  // Label flip symmetry: AUC(scores, 1-labels) = 1 - AUC.
  std::vector<float> flipped(n);
  for (size_t i = 0; i < n; ++i) flipped[i] = 1.0f - labels[i];
  EXPECT_NEAR(ComputeAuc(scores, flipped).ValueOrDie(), 1.0 - fast, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AucPropertyTest,
                         ::testing::Values(41, 42, 43, 44, 45, 46, 47, 48));

// ------------------------------------------------------------------------
// K-means invariants across dimensions and cluster counts: reported
// inertia equals recomputed point-to-center distance; every cluster id is
// within range; centers are the means of their members (Lloyd fixpoint,
// up to the last assignment step).
// ------------------------------------------------------------------------

struct KMeansCase {
  int32_t n;
  int32_t dim;
  int32_t k;
};

class KMeansPropertyTest : public ::testing::TestWithParam<KMeansCase> {};

TEST_P(KMeansPropertyTest, InertiaConsistentAndIdsInRange) {
  const KMeansCase c = GetParam();
  Rng rng(static_cast<uint64_t>(c.n * 131 + c.dim * 17 + c.k));
  Matrix points(static_cast<size_t>(c.n), static_cast<size_t>(c.dim));
  points.FillNormal(rng);
  KMeansConfig config;
  config.k = c.k;
  config.seed = 7;
  auto result = RunKMeans(points, config);
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  double recomputed = 0.0;
  for (int32_t i = 0; i < c.n; ++i) {
    const int32_t a = r.assignment[static_cast<size_t>(i)];
    ASSERT_GE(a, 0);
    ASSERT_LT(a, std::min(c.k, c.n));
    recomputed += RowSquaredDistance(points, static_cast<size_t>(i),
                                     r.centers, static_cast<size_t>(a));
  }
  // RepairEmptyClusters may move a point after the last inertia update,
  // which only ever decreases the distance sum.
  EXPECT_LE(recomputed, r.inertia + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KMeansPropertyTest,
    ::testing::Values(KMeansCase{50, 2, 3}, KMeansCase{200, 8, 10},
                      KMeansCase{64, 32, 4}, KMeansCase{30, 3, 30},
                      KMeansCase{100, 1, 5}, KMeansCase{500, 16, 25}));

// ------------------------------------------------------------------------
// AliasSampler must agree with linear-scan Discrete sampling in
// distribution for arbitrary weight vectors.
// ------------------------------------------------------------------------

class AliasAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AliasAgreementTest, MatchesLinearScanDistribution) {
  Rng rng(GetParam());
  const size_t buckets = 3 + rng.UniformInt(12);
  std::vector<double> weights(buckets);
  for (double& w : weights) {
    w = rng.Bernoulli(0.2) ? 0.0 : rng.Uniform(0.1, 5.0);
  }
  weights[0] = 1.0;  // at least one positive
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);

  AliasSampler sampler(weights);
  const int draws = 60000;
  std::vector<int> counts(buckets, 0);
  Rng draw_rng(GetParam() ^ 0xABCD);
  for (int d = 0; d < draws; ++d) ++counts[sampler.Sample(draw_rng)];
  for (size_t b = 0; b < buckets; ++b) {
    const double expected = weights[b] / total;
    const double observed = counts[b] / static_cast<double>(draws);
    EXPECT_NEAR(observed, expected, 0.015) << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AliasAgreementTest,
                         ::testing::Values(51, 52, 53, 54, 55));

// ------------------------------------------------------------------------
// Generator determinism & invariants across preset variations.
// ------------------------------------------------------------------------

class GeneratorSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorSeedTest, InteractionsRespectInvariants) {
  SyntheticConfig config = SyntheticConfig::Tiny();
  config.seed = GetParam();
  auto dataset = SyntheticDataset::Generate(config);
  ASSERT_TRUE(dataset.ok());
  const auto& ds = dataset.value();
  // Purchase implies click (every purchased interaction is an interaction);
  // counters consistent; purchase probability within (0,1).
  for (const auto& interaction : ds.interactions()) {
    const double p = ds.PurchaseProbability(interaction.user,
                                            interaction.item);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
  for (int32_t i = 0; i < ds.num_items(); ++i) {
    EXPECT_LE(ds.item_counters()[static_cast<size_t>(i)][1],
              ds.item_counters()[static_cast<size_t>(i)][0]);
  }
  const BipartiteGraph graph = ds.BuildTrainGraph();
  EXPECT_TRUE(graph.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedTest,
                         ::testing::Values(61, 62, 63, 64));

}  // namespace
}  // namespace hignn
