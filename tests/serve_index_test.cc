// Cluster-tree retrieval index tests (serve/index/cluster_tree.h): the
// exactness knob (beam <= 0 and beam = "infinity" are bitwise identical
// to the linear scan), determinism across thread counts and hot-reload
// generations, recall@10 at the default beam on a planted hierarchy,
// byte-identical on-load index reconstruction for legacy version-1
// stores, rejection of corrupted/truncated index sections, the wire
// protocol's optional per-request beam field (including the pre-beam
// 8-byte body old clients send), and the shared TopKByScore tie-break
// contract both paths rest on.

#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "data/planted.h"
#include "predict/recommender.h"
#include "serve/client.h"
#include "serve/embedding_store.h"
#include "serve/engine.h"
#include "serve/index/cluster_tree.h"
#include "serve/serve_metrics.h"
#include "serve/server.h"
#include "serve/store_manager.h"
#include "serve/wire.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hignn {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// One planted world shared by every test: cluster structure and score
// landscape are planted (data/planted.h), so beam descent has a
// hierarchy it can actually route — exported once with the index
// sections (v2) and once in the legacy pre-index layout (v1).
class PlantedIndexFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PlantedWorldConfig config;
    config.num_users = 200;
    config.num_items = 4000;
    config.level_dim = 8;
    config.cvr_train_samples = 12000;
    config.cvr_epochs = 2;
    config.seed = 7;
    world_ = BuildPlantedWorld(config).ValueOrDie().release();

    store_path_ = TempPath("planted_index.hgnnstore");
    EXPECT_TRUE(ExportEmbeddingStore(world_->model, world_->dataset,
                                     world_->spec, world_->cvr, store_path_)
                    .ok());
    legacy_path_ = TempPath("planted_index_v1.hgnnstore");
    StoreExportOptions legacy;
    legacy.include_index = false;
    EXPECT_TRUE(ExportEmbeddingStore(world_->model, world_->dataset,
                                     world_->spec, world_->cvr, legacy_path_,
                                     legacy)
                    .ok());
  }

  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  static PlantedWorld* world_;
  static std::string store_path_;
  static std::string legacy_path_;
};

PlantedWorld* PlantedIndexFixture::world_ = nullptr;
std::string PlantedIndexFixture::store_path_;
std::string PlantedIndexFixture::legacy_path_;

// ------------------------------------------------------ tie-breaking --

// Satellite regression: TopKByScore must be an explicit total order
// (score desc, NaN last, ties by ascending id) for ANY candidate
// permutation — the property that makes the beamed and exact paths
// agree byte for byte on ties.
TEST(TopKByScoreOrder, TiesBreakByAscendingIdForAnyInputOrder) {
  const std::vector<int32_t> forward{3, 9, 1, 7, 5};
  const std::vector<float> scores_fwd{0.5f, 0.5f, 0.25f, 0.5f, 0.75f};
  const std::vector<int32_t> backward{5, 7, 1, 9, 3};
  const std::vector<float> scores_bwd{0.75f, 0.5f, 0.25f, 0.5f, 0.5f};

  const std::vector<Recommendation> a = TopKByScore(forward, scores_fwd, 4);
  const std::vector<Recommendation> b = TopKByScore(backward, scores_bwd, 4);
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(b.size(), 4u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "rank " << i;
  }
  EXPECT_EQ(a[0].item, 5);  // 0.75
  EXPECT_EQ(a[1].item, 3);  // 0.5 tie -> smallest id first
  EXPECT_EQ(a[2].item, 7);
  EXPECT_EQ(a[3].item, 9);
}

TEST(TopKByScoreOrder, NaNsRankLastAndTieByIdDeterministically) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const std::vector<int32_t> forward{4, 2, 8, 6};
  const std::vector<float> scores_fwd{nan, 0.1f, nan, 0.9f};
  const std::vector<int32_t> backward{6, 8, 2, 4};
  const std::vector<float> scores_bwd{0.9f, nan, 0.1f, nan};

  const std::vector<Recommendation> a = TopKByScore(forward, scores_fwd, 4);
  const std::vector<Recommendation> b = TopKByScore(backward, scores_bwd, 4);
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(a[0].item, 6);
  EXPECT_EQ(a[1].item, 2);
  EXPECT_EQ(a[2].item, 4);  // NaN-vs-NaN tie -> ascending id
  EXPECT_EQ(a[3].item, 8);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item, b[i].item) << "rank " << i;
    EXPECT_EQ(std::isnan(a[i].score), std::isnan(b[i].score)) << "rank " << i;
  }
}

// -------------------------------------------------------- exactness --

TEST_F(PlantedIndexFixture, BeamAtInfinityIsBitwiseIdenticalToLinearScan) {
  auto engine = std::move(PredictionEngine::Open(store_path_).ValueOrDie());
  const int32_t num_items = engine->store().num_items();
  for (int32_t user : {0, 17, 63, 121, 199}) {
    const std::vector<Recommendation> exact =
        engine->RecommendTopK(user, 10).ValueOrDie();
    // beam <= 0: the explicit exactness knob.
    const std::vector<Recommendation> knob =
        engine->RecommendTopK(user, 10, -1).ValueOrDie();
    // beam >= every frontier: descent never prunes, all leaves survive.
    const std::vector<Recommendation> infinite =
        engine->RecommendTopK(user, 10, num_items).ValueOrDie();
    ASSERT_EQ(exact.size(), knob.size());
    ASSERT_EQ(exact.size(), infinite.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(exact[i], knob[i]) << "user " << user << " rank " << i;
      EXPECT_EQ(exact[i], infinite[i]) << "user " << user << " rank " << i;
    }
  }
}

TEST_F(PlantedIndexFixture, BeamedSearchPrunesAndReportsStats) {
  auto engine = std::move(PredictionEngine::Open(store_path_).ValueOrDie());
  ClusterTreeIndex::SearchStats stats;
  const std::vector<Recommendation> top =
      engine->RecommendTopK(42, 10, kDefaultTopKBeam, &stats).ValueOrDie();
  EXPECT_EQ(top.size(), 10u);
  EXPECT_GT(stats.nodes_scored, 0);
  EXPECT_GT(stats.leaves_selected, 0);
  EXPECT_EQ(stats.levels_descended, engine->store().index().num_levels());
  // The whole point: far fewer rows through the MLP than a linear scan.
  EXPECT_LT(stats.nodes_scored + stats.leaves_selected,
            engine->store().num_items() / 2);
}

// ------------------------------------------------------ determinism --

TEST_F(PlantedIndexFixture, BeamedTopKIsIdenticalAcrossThreadCounts) {
  auto engine = std::move(PredictionEngine::Open(store_path_).ValueOrDie());
  std::vector<std::vector<Recommendation>> with_one, with_four;
  SetGlobalThreadPoolThreads(1);
  for (int32_t user : {3, 58, 142}) {
    with_one.push_back(
        engine->RecommendTopK(user, 10, kDefaultTopKBeam).ValueOrDie());
  }
  SetGlobalThreadPoolThreads(4);
  for (int32_t user : {3, 58, 142}) {
    with_four.push_back(
        engine->RecommendTopK(user, 10, kDefaultTopKBeam).ValueOrDie());
  }
  SetGlobalThreadPoolThreads(1);
  ASSERT_EQ(with_one.size(), with_four.size());
  for (size_t u = 0; u < with_one.size(); ++u) {
    ASSERT_EQ(with_one[u].size(), with_four[u].size());
    for (size_t i = 0; i < with_one[u].size(); ++i) {
      EXPECT_EQ(with_one[u][i], with_four[u][i])
          << "query " << u << " rank " << i;
    }
  }
}

TEST_F(PlantedIndexFixture, BeamedTopKIsIdenticalAcrossHotReloads) {
  ServeMetrics metrics;
  auto stores =
      std::move(StoreManager::Open(store_path_, &metrics).ValueOrDie());
  const std::vector<Recommendation> before =
      stores->Current()
          ->engine->RecommendTopK(77, 10, kDefaultTopKBeam)
          .ValueOrDie();
  ASSERT_TRUE(stores->Reload().ok());
  ASSERT_TRUE(stores->Reload(legacy_path_).ok());  // v1: index rebuilt
  const std::vector<Recommendation> after =
      stores->Current()
          ->engine->RecommendTopK(77, 10, kDefaultTopKBeam)
          .ValueOrDie();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]) << "rank " << i;
  }
}

// ----------------------------------------------------------- recall --

TEST_F(PlantedIndexFixture, DefaultBeamHoldsRecallAt10Above95Percent) {
  auto engine = std::move(PredictionEngine::Open(store_path_).ValueOrDie());
  int64_t hits = 0;
  int64_t wanted = 0;
  for (int32_t user = 0; user < engine->store().num_users(); user += 4) {
    const std::vector<Recommendation> exact =
        engine->RecommendTopK(user, 10).ValueOrDie();
    const std::vector<Recommendation> beamed =
        engine->RecommendTopK(user, 10, kDefaultTopKBeam).ValueOrDie();
    std::set<int32_t> found;
    for (const Recommendation& rec : beamed) found.insert(rec.item);
    for (const Recommendation& rec : exact) {
      ++wanted;
      hits += found.count(rec.item) ? 1 : 0;
    }
  }
  ASSERT_GT(wanted, 0);
  const double recall =
      static_cast<double>(hits) / static_cast<double>(wanted);
  EXPECT_GE(recall, 0.95) << hits << "/" << wanted;
}

// ----------------------------------------------- store format / load --

TEST_F(PlantedIndexFixture, LegacyStoreRebuildsByteIdenticalIndex) {
  auto v2 = std::move(EmbeddingStore::Open(store_path_).ValueOrDie());
  auto v1 = std::move(EmbeddingStore::Open(legacy_path_).ValueOrDie());
  const ClusterTreeIndex& a = v2->index();
  const ClusterTreeIndex& b = v1->index();
  ASSERT_EQ(a.num_levels(), b.num_levels());
  ASSERT_GE(a.num_levels(), 2);
  const int32_t block = a.geometry().item_block_cols;
  const int32_t tail = a.geometry().item_tail_dim;
  for (int32_t l = 1; l <= a.num_levels(); ++l) {
    const ClusterTreeLevel& la = a.level(l);
    const ClusterTreeLevel& lb = b.level(l);
    ASSERT_EQ(la.num_clusters, lb.num_clusters) << "level " << l;
    ASSERT_EQ(la.num_children, lb.num_children) << "level " << l;
    EXPECT_EQ(0, std::memcmp(la.centroid_block, lb.centroid_block,
                             static_cast<size_t>(la.num_clusters) *
                                 static_cast<size_t>(block) * sizeof(float)))
        << "level " << l << " centroid block";
    EXPECT_EQ(0, std::memcmp(la.centroid_tail, lb.centroid_tail,
                             static_cast<size_t>(la.num_clusters) *
                                 static_cast<size_t>(tail) * sizeof(float)))
        << "level " << l << " centroid tail";
    EXPECT_EQ(0,
              std::memcmp(la.child_offsets, lb.child_offsets,
                          static_cast<size_t>(la.num_clusters + 1) *
                              sizeof(int32_t)))
        << "level " << l << " offsets";
    EXPECT_EQ(0, std::memcmp(la.child_ids, lb.child_ids,
                             static_cast<size_t>(la.num_children) *
                                 sizeof(int32_t)))
        << "level " << l << " children";
  }
}

TEST_F(PlantedIndexFixture, LegacyAndIndexedStoresServeIdenticalBeamedTopK) {
  auto indexed = std::move(PredictionEngine::Open(store_path_).ValueOrDie());
  auto legacy = std::move(PredictionEngine::Open(legacy_path_).ValueOrDie());
  for (int32_t user : {5, 99, 180}) {
    const std::vector<Recommendation> a =
        indexed->RecommendTopK(user, 10, kDefaultTopKBeam).ValueOrDie();
    const std::vector<Recommendation> b =
        legacy->RecommendTopK(user, 10, kDefaultTopKBeam).ValueOrDie();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "user " << user << " rank " << i;
    }
  }
}

TEST_F(PlantedIndexFixture, CorruptedIndexSectionIsRejectedAsIOError) {
  std::string bytes = ReadBytes(store_path_);
  const std::string v1_bytes = ReadBytes(legacy_path_);
  ASSERT_GT(bytes.size(), v1_bytes.size());
  // The index sections are everything the v2 layout appends after the
  // v1 layout; flip a bit comfortably inside them.
  const size_t index_start = v1_bytes.size();
  const size_t target = index_start + (bytes.size() - index_start) / 2;
  bytes[target] = static_cast<char>(bytes[target] ^ 0x10);
  const std::string corrupt_path = TempPath("planted_index_corrupt.hgnnstore");
  WriteBytes(corrupt_path, bytes);
  auto store = EmbeddingStore::Open(corrupt_path);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kIOError)
      << store.status().ToString();
}

TEST_F(PlantedIndexFixture, TruncatedIndexSectionIsRejectedAsIOError) {
  const std::string bytes = ReadBytes(store_path_);
  ASSERT_GT(bytes.size(), 128u);
  const std::string truncated_path =
      TempPath("planted_index_truncated.hgnnstore");
  WriteBytes(truncated_path, bytes.substr(0, bytes.size() - 96));
  auto store = EmbeddingStore::Open(truncated_path);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kIOError)
      << store.status().ToString();
}

// ------------------------------------------------------------- wire --

TEST_F(PlantedIndexFixture, WireBeamOverrideSelectsExactOrBeamedPath) {
  ServeMetrics metrics;
  auto stores =
      std::move(StoreManager::Open(store_path_, &metrics).ValueOrDie());
  auto server =
      std::move(ScoringServer::Start(stores.get(), &metrics, ServerConfig())
                    .ValueOrDie());
  auto client = std::move(
      ScoringClient::Connect("127.0.0.1", server->port()).ValueOrDie());

  const std::shared_ptr<const StoreGeneration> generation = stores->Current();
  for (int32_t user : {11, 87}) {
    const std::vector<Recommendation> exact =
        generation->engine->RecommendTopK(user, 5).ValueOrDie();
    const std::vector<Recommendation> beamed =
        generation->engine->RecommendTopK(user, 5, kDefaultTopKBeam)
            .ValueOrDie();

    // beam 0 -> server default (kDefaultTopKBeam), beam -1 -> exact,
    // explicit beam -> that beam.
    const std::vector<Recommendation> wire_default =
        client.TopK(user, 5).ValueOrDie();
    const std::vector<Recommendation> wire_exact =
        client.TopK(user, 5, -1).ValueOrDie();
    const std::vector<Recommendation> wire_beamed =
        client.TopK(user, 5, kDefaultTopKBeam).ValueOrDie();

    ASSERT_EQ(wire_default.size(), beamed.size());
    ASSERT_EQ(wire_exact.size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(wire_default[i], beamed[i]) << "user " << user << " rank " << i;
      EXPECT_EQ(wire_beamed[i], beamed[i]) << "user " << user << " rank " << i;
      EXPECT_EQ(wire_exact[i], exact[i]) << "user " << user << " rank " << i;
    }
  }

  // serve.index.* metrics observed the traffic: four beamed searches,
  // two exact ones.
  EXPECT_EQ(metrics.index_searches_total(), 6);
  EXPECT_EQ(metrics.index_exact_total(), 2);
  EXPECT_GT(metrics.index_nodes_scored_total(), 0);
  EXPECT_GT(metrics.index_leaves_scored_total(), 0);
  EXPECT_EQ(metrics.index_beam(), kDefaultTopKBeam);
  const std::string json = client.Stats().ValueOrDie();
  EXPECT_NE(json.find("\"index\": {\"searches\": 6, \"exact\": 2"),
            std::string::npos)
      << json;
  server->Stop();
}

TEST_F(PlantedIndexFixture, PreBeamEightByteTopKBodyStillParses) {
  ServeMetrics metrics;
  auto stores =
      std::move(StoreManager::Open(store_path_, &metrics).ValueOrDie());
  auto server =
      std::move(ScoringServer::Start(stores.get(), &metrics, ServerConfig())
                    .ValueOrDie());

  // Hand-rolled legacy client: verb + user + k, no beam field — exactly
  // the body a pre-index binary emits. Must be served with the
  // configured default beam.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server->port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);

  WireWriter request;
  request.PutU8(static_cast<uint8_t>(WireVerb::kTopK));
  request.PutI32(33);
  request.PutI32(5);
  ASSERT_EQ(request.bytes().size(), 9u);  // the old fixed-size body
  ASSERT_TRUE(SendFrame(fd, request.bytes()).ok());
  const std::vector<char> body = RecvFrame(fd).ValueOrDie();
  ::close(fd);

  WireReader reader(body);
  ASSERT_EQ(reader.TakeU8().ValueOrDie(),
            static_cast<uint8_t>(WireStatus::kOk));
  const uint32_t count = reader.TakeU32().ValueOrDie();
  const std::vector<Recommendation> expected =
      stores->Current()
          ->engine->RecommendTopK(33, 5, kDefaultTopKBeam)
          .ValueOrDie();
  ASSERT_EQ(count, expected.size());
  for (uint32_t i = 0; i < count; ++i) {
    Recommendation rec;
    rec.item = reader.TakeI32().ValueOrDie();
    rec.score = reader.TakeF32().ValueOrDie();
    EXPECT_EQ(rec, expected[i]) << "rank " << i;
  }
  server->Stop();
}

}  // namespace
}  // namespace hignn
