// 1-thread vs N-thread determinism: every parallel kernel partitions work
// so each output element is produced by exactly one thread with a fixed
// accumulation order, and every floating-point reduction merges
// workload-derived chunks in ascending order. These tests pin that
// contract: identical bits at num_threads = 1 and num_threads = 4.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cluster/kmeans.h"
#include "core/hignn.h"
#include "data/synthetic.h"
#include "nn/matrix.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hignn {
namespace {

::testing::AssertionResult BitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "shape " << a.rows() << "x" << a.cols() << " vs " << b.rows()
           << "x" << b.cols();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.data()[i] != b.data()[i]) {
      return ::testing::AssertionFailure()
             << "element " << i << ": " << a.data()[i] << " vs "
             << b.data()[i];
    }
  }
  return ::testing::AssertionSuccess();
}

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  m.FillNormal(rng);
  return m;
}

// Sizes above the kernels' sequential cutoff so the 4-thread run actually
// takes the parallel path.
TEST(ParallelKernelTest, MatMulBitwiseStableAcrossThreadCounts) {
  const Matrix a = RandomMatrix(128, 64, 1);
  const Matrix b = RandomMatrix(64, 48, 2);
  SetGlobalThreadPoolThreads(1);
  const Matrix seq = MatMul(a, b);
  SetGlobalThreadPoolThreads(4);
  const Matrix par = MatMul(a, b);
  SetGlobalThreadPoolThreads(1);
  EXPECT_TRUE(BitwiseEqual(seq, par));
}

TEST(ParallelKernelTest, MatMulBTBitwiseStableAcrossThreadCounts) {
  const Matrix a = RandomMatrix(128, 64, 3);
  const Matrix b = RandomMatrix(96, 64, 4);
  SetGlobalThreadPoolThreads(1);
  const Matrix seq = MatMulBT(a, b);
  SetGlobalThreadPoolThreads(4);
  const Matrix par = MatMulBT(a, b);
  SetGlobalThreadPoolThreads(1);
  EXPECT_TRUE(BitwiseEqual(seq, par));
}

TEST(ParallelKernelTest, MatMulATBitwiseStableAcrossThreadCounts) {
  const Matrix a = RandomMatrix(256, 64, 5);
  const Matrix b = RandomMatrix(256, 48, 6);
  SetGlobalThreadPoolThreads(1);
  const Matrix seq = MatMulAT(a, b);
  SetGlobalThreadPoolThreads(4);
  const Matrix par = MatMulAT(a, b);
  SetGlobalThreadPoolThreads(1);
  EXPECT_TRUE(BitwiseEqual(seq, par));
}

TEST(ParallelKernelTest, TransposeBitwiseStableAcrossThreadCounts) {
  const Matrix a = RandomMatrix(300, 250, 7);
  SetGlobalThreadPoolThreads(1);
  const Matrix seq = Transpose(a);
  SetGlobalThreadPoolThreads(4);
  const Matrix par = Transpose(a);
  SetGlobalThreadPoolThreads(1);
  EXPECT_TRUE(BitwiseEqual(seq, par));
}

TEST(ParallelKernelTest, MatMulAgreesWithNaiveReference) {
  const Matrix a = RandomMatrix(130, 70, 8);
  const Matrix b = RandomMatrix(70, 50, 9);
  SetGlobalThreadPoolThreads(4);
  const Matrix out = MatMul(a, b);
  SetGlobalThreadPoolThreads(1);
  Rng probe(10);
  for (int t = 0; t < 50; ++t) {
    const size_t i = probe.UniformInt(a.rows());
    const size_t j = probe.UniformInt(b.cols());
    float acc = 0.0f;
    for (size_t p = 0; p < a.cols(); ++p) acc += a(i, p) * b(p, j);
    EXPECT_NEAR(out(i, j), acc, 1e-4f);
  }
}

KMeansResult RunKMeansWithThreads(const Matrix& points, int threads) {
  SetGlobalThreadPoolThreads(static_cast<size_t>(threads));
  KMeansConfig config;
  config.k = 24;
  config.algorithm = KMeansAlgorithm::kLloyd;
  config.max_iters = 10;
  config.seed = 99;
  auto result = RunKMeans(points, config);
  SetGlobalThreadPoolThreads(1);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(KMeansDeterminismTest, OneVsFourThreadsIdentical) {
  // 400 * 24 * 16 distance flops per pass: well above the inline cutoff,
  // so assignment, init and center reduction all take the parallel paths.
  const Matrix points = RandomMatrix(400, 16, 11);
  const KMeansResult one = RunKMeansWithThreads(points, 1);
  const KMeansResult four = RunKMeansWithThreads(points, 4);
  EXPECT_EQ(one.assignment, four.assignment);
  EXPECT_EQ(one.iterations, four.iterations);
  EXPECT_EQ(one.inertia, four.inertia);
  EXPECT_TRUE(BitwiseEqual(one.centers, four.centers));
}

HignnModel FitWithThreads(int threads) {
  SyntheticConfig data_config = SyntheticConfig::Tiny();
  auto dataset = SyntheticDataset::Generate(data_config);
  EXPECT_TRUE(dataset.ok());
  const BipartiteGraph graph = dataset.value().BuildTrainGraph();

  HignnConfig config;
  config.levels = 2;
  config.sage.dims = {8, 8};
  config.sage.fanouts = {5, 3};
  config.sage.train_steps = 8;
  config.sage.batch_size = 64;
  config.num_threads = threads;
  auto model = Hignn::Fit(graph, dataset.value().user_features(),
                          dataset.value().item_features(), config);
  SetGlobalThreadPoolThreads(1);
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

TEST(HignnDeterminismTest, FitOneVsFourThreadsIdentical) {
  const HignnModel one = FitWithThreads(1);
  const HignnModel four = FitWithThreads(4);
  ASSERT_EQ(one.num_levels(), four.num_levels());
  for (int32_t l = 0; l < one.num_levels(); ++l) {
    const HignnLevel& a = one.levels()[static_cast<size_t>(l)];
    const HignnLevel& b = four.levels()[static_cast<size_t>(l)];
    EXPECT_EQ(a.left_assignment, b.left_assignment) << "level " << l;
    EXPECT_EQ(a.right_assignment, b.right_assignment) << "level " << l;
    EXPECT_EQ(a.num_left_clusters, b.num_left_clusters);
    EXPECT_EQ(a.num_right_clusters, b.num_right_clusters);
    EXPECT_TRUE(AllClose(a.left_embeddings, b.left_embeddings, 0.0f))
        << "left embeddings, level " << l;
    EXPECT_TRUE(AllClose(a.right_embeddings, b.right_embeddings, 0.0f))
        << "right embeddings, level " << l;
    EXPECT_EQ(a.train_loss, b.train_loss) << "level " << l;
  }
}

}  // namespace
}  // namespace hignn
