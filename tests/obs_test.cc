// Tests for the unified telemetry subsystem (src/obs/, DESIGN.md §11):
// metrics-registry semantics under concurrent writers, deterministic
// dumps, golden trace JSON, run-report integrity, and the subsystem's
// core contract — telemetry is observation-only, so training results are
// bitwise identical with collection on, off, and at any thread count.
//
// Also compiled into hignn_threading_tests so `ctest -L tsan` races the
// registry atomics and per-thread trace buffers under TSan.

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/hignn.h"
#include "data/synthetic.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "serve/serve_metrics.h"
#include "util/status.h"
#include "util/string_util.h"

namespace hignn {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Restores the global collection switch when a test body exits, including
// on assertion failure, so one test's --obs-off never leaks into the next.
struct EnabledGuard {
  ~EnabledGuard() { obs::SetEnabled(true); }
};

TEST(ObsMetricsTest, CounterGaugeAndSeriesBasics) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.GetCounter("events");
  counter.Add();
  counter.Add(4);
  EXPECT_EQ(counter.value(), 5);
  // Get* returns the same object for the same name.
  EXPECT_EQ(&registry.GetCounter("events"), &counter);

  registry.GetGauge("ratio").Set(0.75);
  EXPECT_DOUBLE_EQ(registry.GetGauge("ratio").value(), 0.75);

  obs::Series& series = registry.GetSeries("loss");
  series.Append(1.0);
  series.Append(0.5);
  EXPECT_EQ(series.Snapshot(), (std::vector<double>{1.0, 0.5}));
  EXPECT_EQ(series.dropped(), 0);
}

TEST(ObsMetricsTest, HistogramBucketBoundariesArePrevBoundInclusive) {
  obs::Histogram histogram({10.0, 20.0});
  histogram.Record(5.0);    // (0, 10]
  histogram.Record(10.0);   // == bound: stays in (0, 10]
  histogram.Record(15.0);   // (10, 20]
  histogram.Record(20.0);   // == bound: stays in (10, 20]
  histogram.Record(25.0);   // overflow
  EXPECT_EQ(histogram.count(), 5);
  EXPECT_EQ(histogram.SnapshotCounts(), (std::vector<int64_t>{2, 2, 1}));
  // Exact extremes and the explicit overflow count ride alongside the
  // bucketized view — the parts bucket flooring loses.
  EXPECT_EQ(histogram.overflow(), 1);
  EXPECT_DOUBLE_EQ(histogram.observed_min(), 5.0);
  EXPECT_DOUBLE_EQ(histogram.observed_max(), 25.0);
  EXPECT_DOUBLE_EQ(histogram.sum(), 75.0);
  // Overflow-bucket percentiles floor to the last finite bound.
  EXPECT_DOUBLE_EQ(histogram.Percentile(1.0), 20.0);
  // The free function over an explicit snapshot agrees with the member.
  EXPECT_DOUBLE_EQ(
      obs::HistogramPercentile(histogram.bounds(),
                               histogram.SnapshotCounts(), 0.5),
      histogram.Percentile(0.5));
}

TEST(ObsMetricsTest, SeriesCapDropsAndTallies) {
  obs::Series series;
  const size_t extra = 3;
  for (size_t i = 0; i < obs::Series::kSeriesCap + extra; ++i) {
    series.Append(static_cast<double>(i));
  }
  EXPECT_EQ(series.Snapshot().size(), obs::Series::kSeriesCap);
  EXPECT_EQ(series.dropped(), static_cast<int64_t>(extra));
}

TEST(ObsMetricsTest, DisabledCollectionMakesUpdatesNoOps) {
  EnabledGuard guard;
  obs::MetricsRegistry registry;
  obs::SetEnabled(false);
  registry.GetCounter("c").Add(7);
  registry.GetGauge("g").Set(1.5);
  obs::Histogram& histogram = registry.GetHistogram("h", {1.0, 2.0});
  histogram.Record(1.0);
  registry.GetSeries("s").Append(3.0);
  EXPECT_EQ(registry.GetCounter("c").value(), 0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("g").value(), 0.0);
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_TRUE(registry.GetSeries("s").Snapshot().empty());

  obs::SetEnabled(true);
  registry.GetCounter("c").Add(2);
  EXPECT_EQ(registry.GetCounter("c").value(), 2);
}

TEST(ObsMetricsTest, ResetZeroesInPlaceAndKeepsReferencesValid) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.GetCounter("c");
  obs::Histogram& histogram = registry.GetHistogram("h", {10.0});
  counter.Add(5);
  histogram.Record(3.0);
  registry.Reset();
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(histogram.count(), 0);
  // Cached references keep working after Reset — the façade contract.
  counter.Add(2);
  histogram.Record(4.0);
  EXPECT_EQ(registry.GetCounter("c").value(), 2);
  EXPECT_EQ(registry.GetHistogram("h", {}).count(), 1);
}

TEST(ObsMetricsTest, ConcurrentWritersLoseNoUpdates) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.GetCounter("hammer");
  obs::Histogram& histogram =
      registry.GetHistogram("latency", obs::DefaultLatencyBoundsUs());
  obs::Series& series = registry.GetSeries("points");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add();
        histogram.Record(static_cast<double>((t * kPerThread + i) % 3000));
        series.Append(static_cast<double>(i));
        HIGNN_SPAN("obs.test.worker", {{"thread", t}});
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t n : histogram.SnapshotCounts()) bucket_total += n;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
  const int64_t kept = static_cast<int64_t>(series.Snapshot().size());
  EXPECT_EQ(kept + series.dropped(), kThreads * kPerThread);
  obs::ResetTrace();  // leave no cross-thread spans behind for goldens
}

TEST(ObsMetricsTest, DumpJsonIsByteStableAndSorted) {
  obs::MetricsRegistry registry;
  // Registered in non-sorted order; dumps must come out sorted.
  registry.GetSeries("d.series").Append(1.0);
  registry.GetSeries("d.series").Append(2.5);
  obs::Histogram& histogram = registry.GetHistogram("c.hist", {10.0, 20.0});
  histogram.Record(5.0);
  histogram.Record(10.0);
  histogram.Record(15.0);
  histogram.Record(25.0);
  registry.GetGauge("b.gauge").Set(0.5);
  registry.GetCounter("a.count").Add(3);

  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"a.count\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"b.gauge\": 0.5\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"c.hist\": {\"count\": 4, \"p50\": 10.0, \"p95\": 20.0, "
      "\"p99\": 20.0, \"min\": 5, \"max\": 25, \"overflow\": 1, "
      "\"buckets\": {\"bounds\": [10, 20], "
      "\"counts\": [2, 1, 1]}}\n"
      "  },\n"
      "  \"series\": {\n"
      "    \"d.series\": {\"count\": 2, \"dropped\": 0, "
      "\"values\": [1, 2.5]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(registry.DumpJson(), expected);
  EXPECT_EQ(registry.DumpJson(), registry.DumpJson());

  EXPECT_EQ(registry.DumpText(),
            "a.count\t3\n"
            "b.gauge\t0.5\n"
            "c.hist\tcount=4 p50=10.0 p95=20.0 p99=20.0\n"
            "d.series\tpoints=2\n");
}

TEST(ObsMetricsTest, DumpPrometheusIsSortedCumulativeAndSanitized) {
  obs::MetricsRegistry registry;
  registry.GetCounter("serve.requests.score").Add(3);
  registry.GetGauge("serve.index.beam").Set(32);
  obs::Histogram& histogram =
      registry.GetHistogram("serve.latency_us", {10.0, 20.0});
  histogram.Record(5.0);
  histogram.Record(15.0);
  histogram.Record(25.0);
  // Series are deliberately omitted from the exposition format.
  registry.GetSeries("loss").Append(1.0);

  EXPECT_EQ(registry.DumpPrometheus(),
            "# TYPE hignn_serve_requests_score counter\n"
            "hignn_serve_requests_score 3\n"
            "# TYPE hignn_serve_index_beam gauge\n"
            "hignn_serve_index_beam 32\n"
            "# TYPE hignn_serve_latency_us histogram\n"
            "hignn_serve_latency_us_bucket{le=\"10\"} 1\n"
            "hignn_serve_latency_us_bucket{le=\"20\"} 2\n"
            "hignn_serve_latency_us_bucket{le=\"+Inf\"} 3\n"
            "hignn_serve_latency_us_sum 45\n"
            "hignn_serve_latency_us_count 3\n");
  EXPECT_EQ(registry.DumpPrometheus(), registry.DumpPrometheus());
}

obs::Event TracedEvent(uint64_t request_id, int64_t start_us,
                       int64_t duration_us) {
  obs::Event event;
  event.request_id = request_id;
  event.verb = 1;
  event.stamps[obs::kPhaseAccept] = start_us;
  event.stamps[obs::kPhaseParse] = start_us + 1;
  event.stamps[obs::kPhaseReplyFlushed] = start_us + duration_us;
  return event;
}

TEST(ObsEventLogTest, GoldenJsonlLineAndDurationSemantics) {
  obs::EventLog log(/*capacity=*/4, /*exemplar_capacity=*/2);
  log.set_slow_threshold_us(100);
  obs::Event event;
  event.request_id = 0xABCDEF0123456789ull;
  event.verb = 2;
  event.ok = false;
  event.stamps[obs::kPhaseAccept] = 1000;
  event.stamps[obs::kPhaseParse] = 1010;
  event.stamps[obs::kPhaseIndexDescent] = 1200;
  event.stamps[obs::kPhaseReplyFlushed] = 1250;
  EXPECT_EQ(event.DurationUs(), 250);
  log.Record(event);
  EXPECT_EQ(log.recorded(), 1);
  EXPECT_EQ(log.slow_recorded(), 1);  // 250 >= 100
  EXPECT_EQ(log.DumpJsonl(),
            "{\"seq\": 0, \"request_id\": \"abcdef0123456789\", "
            "\"verb\": 2, \"ok\": false, \"slow\": true, "
            "\"duration_us\": 250, \"accept_us\": 1000, "
            "\"parse_us\": 1010, \"enqueue_us\": -1, "
            "\"batch_close_us\": -1, \"rows_assembled_us\": -1, "
            "\"forward_done_us\": -1, \"index_descent_us\": 1200, "
            "\"reply_flushed_us\": 1250}\n");
  // Determinism: the same history dumps the same bytes.
  EXPECT_EQ(log.DumpJsonl(), log.DumpJsonl());
}

TEST(ObsEventLogTest, RingEvictsFastEventsButExemplarsKeepSlowOnes) {
  obs::EventLog log(/*capacity=*/4, /*exemplar_capacity=*/2);
  log.set_slow_threshold_us(1000);
  // One slow event, then a burst of fast ones that laps the main ring.
  log.Record(TracedEvent(0x51, /*start_us=*/0, /*duration_us=*/5000));
  for (int i = 0; i < 8; ++i) {
    log.Record(TracedEvent(0x100 + i, 10000 + i * 10, /*duration_us=*/5));
  }
  EXPECT_EQ(log.recorded(), 9);
  EXPECT_EQ(log.slow_recorded(), 1);
  const std::string jsonl = log.DumpJsonl();
  // The slow exemplar survived eviction; the earliest fast events did not.
  EXPECT_NE(jsonl.find("\"request_id\": \"0000000000000051\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"slow\": true"), std::string::npos);
  EXPECT_EQ(jsonl.find("\"request_id\": \"0000000000000100\""),
            std::string::npos);
  // 4 ring slots + 1 surviving exemplar = 5 lines.
  size_t lines = 0;
  for (char c : jsonl) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 5u);
}

TEST(ObsEventLogTest, ExemplarStillInRingIsNotDuplicated) {
  obs::EventLog log(/*capacity=*/4, /*exemplar_capacity=*/2);
  log.set_slow_threshold_us(1000);
  log.Record(TracedEvent(0x51, 0, /*duration_us=*/5000));
  const std::string jsonl = log.DumpJsonl();
  size_t lines = 0;
  for (char c : jsonl) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 1u);  // present in both rings, dumped once
}

TEST(ObsEventLogTest, DisabledThresholdAndCollectionSuppressCapture) {
  EnabledGuard guard;
  obs::EventLog log(/*capacity=*/4, /*exemplar_capacity=*/2);
  log.set_slow_threshold_us(0);  // <= 0 disables exemplar capture
  log.Record(TracedEvent(0x1, 0, /*duration_us=*/999999));
  EXPECT_EQ(log.recorded(), 1);
  EXPECT_EQ(log.slow_recorded(), 0);

  obs::SetEnabled(false);
  log.Record(TracedEvent(0x2, 0, /*duration_us=*/50));
  obs::SetEnabled(true);
  EXPECT_EQ(log.recorded(), 1);  // the disabled record was a no-op

  log.Reset();
  EXPECT_EQ(log.recorded(), 0);
  EXPECT_EQ(log.DumpJsonl(), "");
}

TEST(ObsEventLogTest, ConcurrentRecordersLoseNoEvents) {
  obs::EventLog log(/*capacity=*/128, /*exemplar_capacity=*/16);
  log.set_slow_threshold_us(50);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Every 100th event is slow.
        log.Record(TracedEvent(
            static_cast<uint64_t>(t) << 32 | static_cast<uint64_t>(i),
            i * 10, i % 100 == 0 ? 500 : 5));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(log.recorded(), kThreads * kPerThread);
  EXPECT_EQ(log.slow_recorded(), kThreads * (kPerThread / 100));
  // The dump stays parseable and bounded after the hammer.
  const std::string jsonl = log.DumpJsonl();
  size_t lines = 0;
  for (char c : jsonl) lines += c == '\n' ? 1 : 0;
  EXPECT_LE(lines, 128u + 16u);
}

TEST(ObsTraceTest, GoldenTraceJsonWithZeroedTimestamps) {
  // The tid is this thread's buffer registration index — deterministic
  // for a given process history but dependent on which tests ran before,
  // so extract it from a probe span rather than hard-coding it.
  obs::ResetTrace();
  { HIGNN_SPAN("probe"); }
  const std::string probe = obs::TraceJson(/*zero_timestamps=*/true);
  const size_t tid_pos = probe.find("\"tid\": ");
  ASSERT_NE(tid_pos, std::string::npos);
  const std::string tid = probe.substr(
      tid_pos + 7, probe.find(',', tid_pos) - (tid_pos + 7));

  obs::ResetTrace();
  {
    HIGNN_SPAN("outer", {{"level", 2}});
    { HIGNN_SPAN("inner"); }
  }
  EXPECT_EQ(obs::TraceJson(/*zero_timestamps=*/true),
            "{\"traceEvents\": [\n"
            "  {\"name\": \"inner\", \"cat\": \"hignn\", \"ph\": \"X\", "
            "\"ts\": 0, \"dur\": 0, \"pid\": 1, \"tid\": " + tid + ", "
            "\"args\": {}},\n"
            "  {\"name\": \"outer\", \"cat\": \"hignn\", \"ph\": \"X\", "
            "\"ts\": 0, \"dur\": 0, \"pid\": 1, \"tid\": " + tid + ", "
            "\"args\": {\"level\": 2}}\n"
            "], \"displayTimeUnit\": \"ms\", \"dropped_events\": 0}\n");
  EXPECT_EQ(obs::TraceDropped(), 0);
  obs::ResetTrace();
  EXPECT_EQ(obs::TraceJson(/*zero_timestamps=*/true),
            "{\"traceEvents\": [\n"
            "], \"displayTimeUnit\": \"ms\", \"dropped_events\": 0}\n");
}

TEST(ObsTraceTest, DisabledCollectionRecordsNoSpans) {
  EnabledGuard guard;
  obs::ResetTrace();
  obs::SetEnabled(false);
  { HIGNN_SPAN("invisible"); }
  obs::SetEnabled(true);
  EXPECT_EQ(obs::TraceJson(/*zero_timestamps=*/true),
            "{\"traceEvents\": [\n"
            "], \"displayTimeUnit\": \"ms\", \"dropped_events\": 0}\n");
}

TEST(ObsRunReportTest, RoundTripPreservesFingerprintAndMetrics) {
  obs::MetricsRegistry registry;
  registry.GetCounter("run.test").Add(7);
  const std::string path = TempPath("obs_run_report.json");
  ASSERT_TRUE(
      obs::WriteRunReport(path, 0xDEADBEEFCAFEF00Dull, registry).ok());
  auto loaded = obs::LoadRunReport(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_NE(loaded.value().find("\"fingerprint\": \"deadbeefcafef00d\""),
            std::string::npos);
  EXPECT_NE(loaded.value().find("\"run.test\": 7"), std::string::npos);
  EXPECT_NE(loaded.value().find("\"schema_version\": 1"),
            std::string::npos);
}

TEST(ObsRunReportTest, CorruptionAndTruncationAreRejected) {
  obs::MetricsRegistry registry;
  registry.GetCounter("run.test").Add(7);
  const std::string path = TempPath("obs_run_report_corrupt.json");
  ASSERT_TRUE(obs::WriteRunReport(path, 1, registry).ok());

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }

  // Flip one payload byte: the CRC must notice.
  const size_t at = bytes.find("run.test");
  ASSERT_NE(at, std::string::npos);
  std::string flipped = bytes;
  flipped[at] ^= 0x20;
  { std::ofstream(path, std::ios::binary) << flipped; }
  auto corrupt = obs::LoadRunReport(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kIOError);

  // Truncation must be rejected too, not read as a short report.
  { std::ofstream(path, std::ios::binary) << bytes.substr(0, bytes.size() / 2); }
  auto truncated = obs::LoadRunReport(path);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kIOError);
}

TEST(ObsServeFacadeTest, ServeMetricsReportsIntoItsRegistry) {
  obs::MetricsRegistry registry;
  ServeMetrics metrics(&registry);
  metrics.RecordRequest(ServeVerbStat::kScore, 120.0, /*ok=*/true);
  metrics.RecordRequest(ServeVerbStat::kTopK, 300.0, /*ok=*/false);
  metrics.RecordShed();
  metrics.RecordBatch(4);

  EXPECT_EQ(registry.GetCounter("serve.requests.score").value(), 1);
  EXPECT_EQ(registry.GetCounter("serve.errors.recommend_topk").value(), 1);
  EXPECT_EQ(registry.GetCounter("serve.shed_total").value(), 1);
  EXPECT_EQ(
      registry.GetHistogram("serve.latency_us", {}).count(), 2);
  EXPECT_EQ(metrics.requests_total(), 2);
  EXPECT_EQ(metrics.errors_total(), 1);

  // The wire format (pinned byte-for-byte in serve_test.cc) surfaces the
  // same values the registry holds.
  const std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"score\": {\"requests\": 1, \"errors\": 0}"),
            std::string::npos);
  EXPECT_NE(
      json.find("\"recommend_topk\": {\"requests\": 1, \"errors\": 1}"),
      std::string::npos);
  EXPECT_NE(json.find("\"shed_total\": 1"), std::string::npos);
}

// The tentpole invariant: telemetry is observation-only. Training with
// collection on, off, and at different thread counts must produce
// bitwise-identical models — no clock value or metric read may feed
// deterministic state.
TEST(ObsInvariantTest, FitIsBitwiseIdenticalOnOffAndAcrossThreads) {
  EnabledGuard guard;
  auto dataset =
      SyntheticDataset::Generate(SyntheticConfig::Tiny()).ValueOrDie();
  const BipartiteGraph graph = dataset.BuildTrainGraph();
  HignnConfig config;
  config.levels = 2;
  config.sage.dims = {8, 8};
  config.sage.fanouts = {4, 3};
  config.sage.train_steps = 8;
  config.min_clusters = 2;

  auto fit_with = [&](bool obs_on, int32_t threads) {
    obs::SetEnabled(obs_on);
    HignnConfig run = config;
    run.num_threads = threads;
    auto model = Hignn::Fit(graph, dataset.user_features(),
                            dataset.item_features(), run);
    obs::SetEnabled(true);
    return model.ValueOrDie();
  };

  const HignnModel reference = fit_with(/*obs_on=*/true, /*threads=*/1);
  for (const auto& [obs_on, threads] :
       {std::pair<bool, int32_t>{false, 1}, {true, 4}, {false, 4}}) {
    SCOPED_TRACE(StrFormat("obs_on=%d threads=%d", obs_on ? 1 : 0,
                           threads));
    const HignnModel model = fit_with(obs_on, threads);
    ASSERT_EQ(model.num_levels(), reference.num_levels());
    EXPECT_TRUE(AllClose(model.AllHierarchicalLeft(),
                         reference.AllHierarchicalLeft(), 0.0f));
    EXPECT_TRUE(AllClose(model.AllHierarchicalRight(),
                         reference.AllHierarchicalRight(), 0.0f));
    for (int32_t l = 0; l < reference.num_levels(); ++l) {
      EXPECT_EQ(model.levels()[l].train_loss,
                reference.levels()[l].train_loss);
      EXPECT_EQ(model.levels()[l].left_assignment,
                reference.levels()[l].left_assignment);
      EXPECT_EQ(model.levels()[l].right_assignment,
                reference.levels()[l].right_assignment);
    }
  }
  obs::ResetTrace();
}

}  // namespace
}  // namespace hignn
