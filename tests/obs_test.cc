// Tests for the unified telemetry subsystem (src/obs/, DESIGN.md §11):
// metrics-registry semantics under concurrent writers, deterministic
// dumps, golden trace JSON, run-report integrity, and the subsystem's
// core contract — telemetry is observation-only, so training results are
// bitwise identical with collection on, off, and at any thread count.
//
// Also compiled into hignn_threading_tests so `ctest -L tsan` races the
// registry atomics and per-thread trace buffers under TSan.

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/hignn.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "serve/serve_metrics.h"
#include "util/status.h"
#include "util/string_util.h"

namespace hignn {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Restores the global collection switch when a test body exits, including
// on assertion failure, so one test's --obs-off never leaks into the next.
struct EnabledGuard {
  ~EnabledGuard() { obs::SetEnabled(true); }
};

TEST(ObsMetricsTest, CounterGaugeAndSeriesBasics) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.GetCounter("events");
  counter.Add();
  counter.Add(4);
  EXPECT_EQ(counter.value(), 5);
  // Get* returns the same object for the same name.
  EXPECT_EQ(&registry.GetCounter("events"), &counter);

  registry.GetGauge("ratio").Set(0.75);
  EXPECT_DOUBLE_EQ(registry.GetGauge("ratio").value(), 0.75);

  obs::Series& series = registry.GetSeries("loss");
  series.Append(1.0);
  series.Append(0.5);
  EXPECT_EQ(series.Snapshot(), (std::vector<double>{1.0, 0.5}));
  EXPECT_EQ(series.dropped(), 0);
}

TEST(ObsMetricsTest, HistogramBucketBoundariesArePrevBoundInclusive) {
  obs::Histogram histogram({10.0, 20.0});
  histogram.Record(5.0);    // (0, 10]
  histogram.Record(10.0);   // == bound: stays in (0, 10]
  histogram.Record(15.0);   // (10, 20]
  histogram.Record(20.0);   // == bound: stays in (10, 20]
  histogram.Record(25.0);   // overflow
  EXPECT_EQ(histogram.count(), 5);
  EXPECT_EQ(histogram.SnapshotCounts(), (std::vector<int64_t>{2, 2, 1}));
  // Overflow-bucket percentiles floor to the last finite bound.
  EXPECT_DOUBLE_EQ(histogram.Percentile(1.0), 20.0);
  // The free function over an explicit snapshot agrees with the member.
  EXPECT_DOUBLE_EQ(
      obs::HistogramPercentile(histogram.bounds(),
                               histogram.SnapshotCounts(), 0.5),
      histogram.Percentile(0.5));
}

TEST(ObsMetricsTest, SeriesCapDropsAndTallies) {
  obs::Series series;
  const size_t extra = 3;
  for (size_t i = 0; i < obs::Series::kSeriesCap + extra; ++i) {
    series.Append(static_cast<double>(i));
  }
  EXPECT_EQ(series.Snapshot().size(), obs::Series::kSeriesCap);
  EXPECT_EQ(series.dropped(), static_cast<int64_t>(extra));
}

TEST(ObsMetricsTest, DisabledCollectionMakesUpdatesNoOps) {
  EnabledGuard guard;
  obs::MetricsRegistry registry;
  obs::SetEnabled(false);
  registry.GetCounter("c").Add(7);
  registry.GetGauge("g").Set(1.5);
  obs::Histogram& histogram = registry.GetHistogram("h", {1.0, 2.0});
  histogram.Record(1.0);
  registry.GetSeries("s").Append(3.0);
  EXPECT_EQ(registry.GetCounter("c").value(), 0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("g").value(), 0.0);
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_TRUE(registry.GetSeries("s").Snapshot().empty());

  obs::SetEnabled(true);
  registry.GetCounter("c").Add(2);
  EXPECT_EQ(registry.GetCounter("c").value(), 2);
}

TEST(ObsMetricsTest, ResetZeroesInPlaceAndKeepsReferencesValid) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.GetCounter("c");
  obs::Histogram& histogram = registry.GetHistogram("h", {10.0});
  counter.Add(5);
  histogram.Record(3.0);
  registry.Reset();
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(histogram.count(), 0);
  // Cached references keep working after Reset — the façade contract.
  counter.Add(2);
  histogram.Record(4.0);
  EXPECT_EQ(registry.GetCounter("c").value(), 2);
  EXPECT_EQ(registry.GetHistogram("h", {}).count(), 1);
}

TEST(ObsMetricsTest, ConcurrentWritersLoseNoUpdates) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.GetCounter("hammer");
  obs::Histogram& histogram =
      registry.GetHistogram("latency", obs::DefaultLatencyBoundsUs());
  obs::Series& series = registry.GetSeries("points");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add();
        histogram.Record(static_cast<double>((t * kPerThread + i) % 3000));
        series.Append(static_cast<double>(i));
        HIGNN_SPAN("obs.test.worker", {{"thread", t}});
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t n : histogram.SnapshotCounts()) bucket_total += n;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
  const int64_t kept = static_cast<int64_t>(series.Snapshot().size());
  EXPECT_EQ(kept + series.dropped(), kThreads * kPerThread);
  obs::ResetTrace();  // leave no cross-thread spans behind for goldens
}

TEST(ObsMetricsTest, DumpJsonIsByteStableAndSorted) {
  obs::MetricsRegistry registry;
  // Registered in non-sorted order; dumps must come out sorted.
  registry.GetSeries("d.series").Append(1.0);
  registry.GetSeries("d.series").Append(2.5);
  obs::Histogram& histogram = registry.GetHistogram("c.hist", {10.0, 20.0});
  histogram.Record(5.0);
  histogram.Record(10.0);
  histogram.Record(15.0);
  histogram.Record(25.0);
  registry.GetGauge("b.gauge").Set(0.5);
  registry.GetCounter("a.count").Add(3);

  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"a.count\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"b.gauge\": 0.5\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"c.hist\": {\"count\": 4, \"p50\": 10.0, \"p95\": 20.0, "
      "\"p99\": 20.0, \"buckets\": {\"bounds\": [10, 20], "
      "\"counts\": [2, 1, 1]}}\n"
      "  },\n"
      "  \"series\": {\n"
      "    \"d.series\": {\"count\": 2, \"dropped\": 0, "
      "\"values\": [1, 2.5]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(registry.DumpJson(), expected);
  EXPECT_EQ(registry.DumpJson(), registry.DumpJson());

  EXPECT_EQ(registry.DumpText(),
            "a.count\t3\n"
            "b.gauge\t0.5\n"
            "c.hist\tcount=4 p50=10.0 p95=20.0 p99=20.0\n"
            "d.series\tpoints=2\n");
}

TEST(ObsTraceTest, GoldenTraceJsonWithZeroedTimestamps) {
  // The tid is this thread's buffer registration index — deterministic
  // for a given process history but dependent on which tests ran before,
  // so extract it from a probe span rather than hard-coding it.
  obs::ResetTrace();
  { HIGNN_SPAN("probe"); }
  const std::string probe = obs::TraceJson(/*zero_timestamps=*/true);
  const size_t tid_pos = probe.find("\"tid\": ");
  ASSERT_NE(tid_pos, std::string::npos);
  const std::string tid = probe.substr(
      tid_pos + 7, probe.find(',', tid_pos) - (tid_pos + 7));

  obs::ResetTrace();
  {
    HIGNN_SPAN("outer", {{"level", 2}});
    { HIGNN_SPAN("inner"); }
  }
  EXPECT_EQ(obs::TraceJson(/*zero_timestamps=*/true),
            "{\"traceEvents\": [\n"
            "  {\"name\": \"inner\", \"cat\": \"hignn\", \"ph\": \"X\", "
            "\"ts\": 0, \"dur\": 0, \"pid\": 1, \"tid\": " + tid + ", "
            "\"args\": {}},\n"
            "  {\"name\": \"outer\", \"cat\": \"hignn\", \"ph\": \"X\", "
            "\"ts\": 0, \"dur\": 0, \"pid\": 1, \"tid\": " + tid + ", "
            "\"args\": {\"level\": 2}}\n"
            "], \"displayTimeUnit\": \"ms\", \"dropped_events\": 0}\n");
  EXPECT_EQ(obs::TraceDropped(), 0);
  obs::ResetTrace();
  EXPECT_EQ(obs::TraceJson(/*zero_timestamps=*/true),
            "{\"traceEvents\": [\n"
            "], \"displayTimeUnit\": \"ms\", \"dropped_events\": 0}\n");
}

TEST(ObsTraceTest, DisabledCollectionRecordsNoSpans) {
  EnabledGuard guard;
  obs::ResetTrace();
  obs::SetEnabled(false);
  { HIGNN_SPAN("invisible"); }
  obs::SetEnabled(true);
  EXPECT_EQ(obs::TraceJson(/*zero_timestamps=*/true),
            "{\"traceEvents\": [\n"
            "], \"displayTimeUnit\": \"ms\", \"dropped_events\": 0}\n");
}

TEST(ObsRunReportTest, RoundTripPreservesFingerprintAndMetrics) {
  obs::MetricsRegistry registry;
  registry.GetCounter("run.test").Add(7);
  const std::string path = TempPath("obs_run_report.json");
  ASSERT_TRUE(
      obs::WriteRunReport(path, 0xDEADBEEFCAFEF00Dull, registry).ok());
  auto loaded = obs::LoadRunReport(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_NE(loaded.value().find("\"fingerprint\": \"deadbeefcafef00d\""),
            std::string::npos);
  EXPECT_NE(loaded.value().find("\"run.test\": 7"), std::string::npos);
  EXPECT_NE(loaded.value().find("\"schema_version\": 1"),
            std::string::npos);
}

TEST(ObsRunReportTest, CorruptionAndTruncationAreRejected) {
  obs::MetricsRegistry registry;
  registry.GetCounter("run.test").Add(7);
  const std::string path = TempPath("obs_run_report_corrupt.json");
  ASSERT_TRUE(obs::WriteRunReport(path, 1, registry).ok());

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }

  // Flip one payload byte: the CRC must notice.
  const size_t at = bytes.find("run.test");
  ASSERT_NE(at, std::string::npos);
  std::string flipped = bytes;
  flipped[at] ^= 0x20;
  { std::ofstream(path, std::ios::binary) << flipped; }
  auto corrupt = obs::LoadRunReport(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kIOError);

  // Truncation must be rejected too, not read as a short report.
  { std::ofstream(path, std::ios::binary) << bytes.substr(0, bytes.size() / 2); }
  auto truncated = obs::LoadRunReport(path);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kIOError);
}

TEST(ObsServeFacadeTest, ServeMetricsReportsIntoItsRegistry) {
  obs::MetricsRegistry registry;
  ServeMetrics metrics(&registry);
  metrics.RecordRequest(ServeVerbStat::kScore, 120.0, /*ok=*/true);
  metrics.RecordRequest(ServeVerbStat::kTopK, 300.0, /*ok=*/false);
  metrics.RecordShed();
  metrics.RecordBatch(4);

  EXPECT_EQ(registry.GetCounter("serve.requests.score").value(), 1);
  EXPECT_EQ(registry.GetCounter("serve.errors.recommend_topk").value(), 1);
  EXPECT_EQ(registry.GetCounter("serve.shed_total").value(), 1);
  EXPECT_EQ(
      registry.GetHistogram("serve.latency_us", {}).count(), 2);
  EXPECT_EQ(metrics.requests_total(), 2);
  EXPECT_EQ(metrics.errors_total(), 1);

  // The wire format (pinned byte-for-byte in serve_test.cc) surfaces the
  // same values the registry holds.
  const std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"score\": {\"requests\": 1, \"errors\": 0}"),
            std::string::npos);
  EXPECT_NE(
      json.find("\"recommend_topk\": {\"requests\": 1, \"errors\": 1}"),
      std::string::npos);
  EXPECT_NE(json.find("\"shed_total\": 1"), std::string::npos);
}

// The tentpole invariant: telemetry is observation-only. Training with
// collection on, off, and at different thread counts must produce
// bitwise-identical models — no clock value or metric read may feed
// deterministic state.
TEST(ObsInvariantTest, FitIsBitwiseIdenticalOnOffAndAcrossThreads) {
  EnabledGuard guard;
  auto dataset =
      SyntheticDataset::Generate(SyntheticConfig::Tiny()).ValueOrDie();
  const BipartiteGraph graph = dataset.BuildTrainGraph();
  HignnConfig config;
  config.levels = 2;
  config.sage.dims = {8, 8};
  config.sage.fanouts = {4, 3};
  config.sage.train_steps = 8;
  config.min_clusters = 2;

  auto fit_with = [&](bool obs_on, int32_t threads) {
    obs::SetEnabled(obs_on);
    HignnConfig run = config;
    run.num_threads = threads;
    auto model = Hignn::Fit(graph, dataset.user_features(),
                            dataset.item_features(), run);
    obs::SetEnabled(true);
    return model.ValueOrDie();
  };

  const HignnModel reference = fit_with(/*obs_on=*/true, /*threads=*/1);
  for (const auto& [obs_on, threads] :
       {std::pair<bool, int32_t>{false, 1}, {true, 4}, {false, 4}}) {
    SCOPED_TRACE(StrFormat("obs_on=%d threads=%d", obs_on ? 1 : 0,
                           threads));
    const HignnModel model = fit_with(obs_on, threads);
    ASSERT_EQ(model.num_levels(), reference.num_levels());
    EXPECT_TRUE(AllClose(model.AllHierarchicalLeft(),
                         reference.AllHierarchicalLeft(), 0.0f));
    EXPECT_TRUE(AllClose(model.AllHierarchicalRight(),
                         reference.AllHierarchicalRight(), 0.0f));
    for (int32_t l = 0; l < reference.num_levels(); ++l) {
      EXPECT_EQ(model.levels()[l].train_loss,
                reference.levels()[l].train_loss);
      EXPECT_EQ(model.levels()[l].left_assignment,
                reference.levels()[l].left_assignment);
      EXPECT_EQ(model.levels()[l].right_assignment,
                reference.levels()[l].right_assignment);
    }
  }
  obs::ResetTrace();
}

}  // namespace
}  // namespace hignn
