// hignn_serve — the online scoring daemon and its command-line client.
//
// Serve mode loads an embedding store (built by `hignn export-store`)
// and answers score/topk/health/stats/reload requests over the wire.h
// TCP protocol until SIGINT/SIGTERM, then shuts down gracefully and
// dumps a metrics JSON snapshot:
//
//   hignn export-store --preset tiny --out /tmp/tiny.hgnnstore
//   hignn_serve serve --store /tmp/tiny.hgnnstore --port 0 \
//       --port-file /tmp/port --metrics-out /tmp/serve_metrics.json
//
// The store can be hot-swapped with zero downtime: a SIGHUP re-opens
// the current store path, and the `reload` client verb swaps to an
// arbitrary path. In-flight requests finish on the generation they
// started with; a reload that fails validation leaves the old store
// serving untouched.
//
// The remaining verbs are one-shot clients (also the CI smoke test):
//
//   hignn_serve score  --port $(cat /tmp/port) --user 3 --item 7
//   hignn_serve topk   --port $(cat /tmp/port) --user 3 --k 5
//   hignn_serve health --port $(cat /tmp/port)
//   hignn_serve stats  --port $(cat /tmp/port)
//   hignn_serve metrics --port $(cat /tmp/port)        # Prometheus text
//   hignn_serve trace-dump --port $(cat /tmp/port)     # event-log JSONL
//   hignn_serve reload --port $(cat /tmp/port) [--store NEW.hgnnstore]
//
// Client verbs take retry flags (--retries N --backoff-ms B
// --retry-budget-ms T --connect-timeout-ms C --io-timeout-ms I) so
// scripts can ride through a reload or a transient without hand-rolled
// sleep loops.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/serve_metrics.h"
#include "serve/server.h"
#include "serve/store_manager.h"
#include "util/flags.h"
#include "util/io.h"
#include "util/string_util.h"

namespace hignn {
namespace {

// Signal handlers may only set flags of this type (see the signal-safety
// lint rule): the main loop polls them and does the real work — logging,
// allocation, and the reload itself are all async-signal-unsafe.
volatile std::sig_atomic_t g_stop_requested = 0;
volatile std::sig_atomic_t g_reload_requested = 0;

void HandleStopSignal(int /*signum*/) { g_stop_requested = 1; }

void HandleReloadSignal(int /*signum*/) { g_reload_requested = 1; }

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr, R"(usage: hignn_serve <command> [flags]

commands:
  serve    run the TCP scoring server until SIGINT/SIGTERM; SIGHUP
           hot-swaps the store (re-opens the current path)
           --store STORE.hgnnstore
           [--host 127.0.0.1] [--port 0]  (0 = ephemeral)
           [--port-file FILE]     (write the bound port, for scripts)
           [--threads 2]          (connection handler threads)
           [--max-batch 64] [--max-delay-us 1000] [--max-queue 4096]
           [--recv-timeout-ms 200]
           [--topk-beam 32]       (default retrieval beam for topk;
                                   <= 0 serves the exact linear scan)
           [--metrics-out FILE]   (dump metrics JSON on shutdown)
           [--trace-out FILE]     (dump Chrome trace_event JSON on
                                   shutdown; open in chrome://tracing)
           [--events-out FILE]    (dump the per-request event log as
                                   JSONL on shutdown; feed to hignn_obs)
           [--slow-us 50000]      (requests at least this slow are always
                                   kept as exemplars; <= 0 disables)
           [--obs-off]            (disable telemetry collection;
                                   scores are identical either way)
  score    score one (user, item) pair
           --port P [--host 127.0.0.1] --user U --item I
  topk     top-k recommendations for a user
           --port P [--host 127.0.0.1] --user U [--k 10] [--beam 0]
           (--beam: 0 = server default, < 0 = exact scan, > 0 = that
            cluster-tree beam width)
  health   liveness probe (prints the live store generation)
           --port P [--host 127.0.0.1]
  stats    print the server's metrics JSON
           --port P [--host 127.0.0.1]
  metrics  print the server's metrics in Prometheus text format
           --port P [--host 127.0.0.1]
  trace-dump  print the server's per-request event log as JSONL
           --port P [--host 127.0.0.1]
  reload   hot-swap the serving store with zero downtime
           --port P [--host 127.0.0.1] [--store NEW.hgnnstore]
           (no --store = re-open the path the server is serving from)

client retry flags (score/topk/health/stats/reload):
  [--retries 1]            total attempts; >1 retries transients with
                           capped exponential backoff + seeded jitter
  [--backoff-ms 10]        initial backoff (doubles per retry, cap 500)
  [--retry-budget-ms 2000] total backoff sleep budget per call
  [--connect-timeout-ms 2000]  non-blocking connect deadline
  [--io-timeout-ms 2000]       per-call socket send/recv timeout
  [--request-id-seed 0]        non-zero tags score/topk frames with
                               deterministic request IDs and prints the
                               server's echoed phase stamps to stderr
)");
  return 2;
}

int RunServe(const CommandLine& cl) {
  const std::string store_path = cl.GetString("store");
  if (store_path.empty()) return Usage();
  auto port = cl.GetInt("port", 0);
  auto threads = cl.GetInt("threads", 2);
  auto max_batch = cl.GetInt("max-batch", 64);
  auto max_delay_us = cl.GetInt("max-delay-us", 1000);
  auto max_queue = cl.GetInt("max-queue", 4096);
  auto recv_timeout_ms = cl.GetInt("recv-timeout-ms", 200);
  auto topk_beam = cl.GetInt("topk-beam", kDefaultTopKBeam);
  auto slow_us = cl.GetInt("slow-us", obs::EventLog::kDefaultSlowThresholdUs);
  for (const Status& status :
       {port.status(), threads.status(), max_batch.status(),
        max_delay_us.status(), max_queue.status(),
        recv_timeout_ms.status(), topk_beam.status(), slow_us.status()}) {
    if (!status.ok()) return Fail(status);
  }

  if (cl.GetBool("obs-off")) obs::SetEnabled(false);

  // The daemon reports into the process-wide registry, so `stats`
  // responses, --metrics-out dumps and any other instrumentation in
  // this process share one set of `serve.*` metrics.
  ServeMetrics metrics(&obs::MetricsRegistry::Global());
  auto stores = StoreManager::Open(store_path, &metrics);
  if (!stores.ok()) return Fail(stores.status());

  ServerConfig config;
  config.host = cl.GetString("host", "127.0.0.1");
  config.port = static_cast<int32_t>(port.value());
  config.num_threads = static_cast<int32_t>(threads.value());
  config.recv_timeout_ms = static_cast<int32_t>(recv_timeout_ms.value());
  config.topk_beam = static_cast<int32_t>(topk_beam.value());
  config.slow_threshold_us = slow_us.value();
  config.batcher.max_batch = static_cast<int32_t>(max_batch.value());
  config.batcher.max_delay_us = static_cast<int32_t>(max_delay_us.value());
  config.batcher.max_queue_rows = static_cast<int32_t>(max_queue.value());

  // Install the handlers before the port becomes visible so a script
  // that reads --port-file can never signal us through a default
  // (process-killing) disposition.
  struct sigaction action = {};
  action.sa_handler = HandleStopSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  struct sigaction reload_action = {};
  reload_action.sa_handler = HandleReloadSignal;
  sigaction(SIGHUP, &reload_action, nullptr);

  auto server = ScoringServer::Start(stores.value().get(), &metrics, config);
  if (!server.ok()) return Fail(server.status());

  const std::string port_file = cl.GetString("port-file");
  if (!port_file.empty()) {
    if (Status status = AtomicWriteTextFile(
            port_file, StrFormat("%d\n", server.value()->port()));
        !status.ok()) {
      return Fail(status);
    }
  }
  {
    const auto generation = stores.value()->Current();
    std::printf(
        "serving %s on %s:%d (%d users x %d items, %d handlers, "
        "generation %lld)\n",
        store_path.c_str(), config.host.c_str(), server.value()->port(),
        generation->store().num_users(), generation->store().num_items(),
        config.num_threads, static_cast<long long>(generation->number));
  }
  std::fflush(stdout);

  while (g_stop_requested == 0) {
    if (g_reload_requested != 0) {
      g_reload_requested = 0;
      // "" = re-open the current generation's path: the SIGHUP contract
      // is "pick up whatever export-store just rewrote in place".
      auto generation = stores.value()->Reload();
      if (generation.ok()) {
        std::printf("reloaded store (generation %lld)\n",
                    static_cast<long long>(generation.value()));
      } else {
        std::fprintf(stderr, "reload failed, old store keeps serving: %s\n",
                     generation.status().ToString().c_str());
      }
      std::fflush(stdout);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("shutting down\n");
  server.value()->Stop();
  const std::string metrics_out = cl.GetString("metrics-out");
  if (!metrics_out.empty()) {
    if (Status status = metrics.DumpJson(metrics_out); !status.ok()) {
      return Fail(status);
    }
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  const std::string trace_out = cl.GetString("trace-out");
  if (!trace_out.empty()) {
    if (Status status = obs::WriteTraceJson(trace_out); !status.ok()) {
      return Fail(status);
    }
    std::printf("trace written to %s\n", trace_out.c_str());
  }
  const std::string events_out = cl.GetString("events-out");
  if (!events_out.empty()) {
    if (Status status = obs::EventLog::Global().WriteJsonl(events_out);
        !status.ok()) {
      return Fail(status);
    }
    std::printf("events written to %s\n", events_out.c_str());
  }
  return 0;
}

Result<ScoringClient> ConnectFlag(const CommandLine& cl) {
  auto port = cl.GetInt("port", 0);
  if (!port.ok()) return port.status();
  if (port.value() <= 0) {
    return Status::InvalidArgument("--port is required");
  }
  auto retries = cl.GetInt("retries", 1);
  auto backoff_ms = cl.GetInt("backoff-ms", 10);
  auto retry_budget_ms = cl.GetInt("retry-budget-ms", 2000);
  auto connect_timeout_ms = cl.GetInt("connect-timeout-ms", 2000);
  auto io_timeout_ms = cl.GetInt("io-timeout-ms", 2000);
  auto request_id_seed = cl.GetInt("request-id-seed", 0);
  for (const Status& status :
       {retries.status(), backoff_ms.status(), retry_budget_ms.status(),
        connect_timeout_ms.status(), io_timeout_ms.status(),
        request_id_seed.status()}) {
    if (!status.ok()) return status;
  }
  ClientConfig config;
  config.request_id_seed = static_cast<uint64_t>(request_id_seed.value());
  config.connect_timeout_ms = static_cast<int32_t>(connect_timeout_ms.value());
  config.send_timeout_ms = static_cast<int32_t>(io_timeout_ms.value());
  config.recv_timeout_ms = static_cast<int32_t>(io_timeout_ms.value());
  config.retry.max_attempts = static_cast<int32_t>(retries.value());
  config.retry.initial_backoff_ms = static_cast<int32_t>(backoff_ms.value());
  config.retry.retry_budget_ms =
      static_cast<int32_t>(retry_budget_ms.value());
  return ScoringClient::Connect(cl.GetString("host", "127.0.0.1"),
                                static_cast<int32_t>(port.value()), config);
}

// When the caller opted into tracing (--request-id-seed), prints the
// server's echoed phase stamps to stderr so the tab-separated stdout
// stays machine-parsable.
void PrintTrace(const ScoringClient& client) {
  const RequestContext& trace = client.last_trace();
  if (trace.request_id == 0) return;
  std::fprintf(stderr,
               "trace %016llx accept=%lld parse=%lld enqueue=%lld "
               "batch_close=%lld rows_assembled=%lld forward_done=%lld "
               "index_descent=%lld\n",
               static_cast<unsigned long long>(trace.request_id),
               static_cast<long long>(trace.accept_us),
               static_cast<long long>(trace.parse_us),
               static_cast<long long>(trace.enqueue_us),
               static_cast<long long>(trace.batch_close_us),
               static_cast<long long>(trace.rows_assembled_us),
               static_cast<long long>(trace.forward_done_us),
               static_cast<long long>(trace.index_descent_us));
}

int RunScore(const CommandLine& cl) {
  auto user = cl.GetInt("user", -1);
  auto item = cl.GetInt("item", -1);
  if (!user.ok()) return Fail(user.status());
  if (!item.ok()) return Fail(item.status());
  if (user.value() < 0 || item.value() < 0) return Usage();
  auto client = ConnectFlag(cl);
  if (!client.ok()) return Fail(client.status());
  ScoreRequest request;
  request.user = static_cast<int32_t>(user.value());
  request.item = static_cast<int32_t>(item.value());
  auto scores = client.value().Score({request});
  if (!scores.ok()) return Fail(scores.status());
  std::printf("%d\t%d\t%.9g\n", request.user, request.item,
              scores.value().front());
  PrintTrace(client.value());
  return 0;
}

int RunTopK(const CommandLine& cl) {
  auto user = cl.GetInt("user", -1);
  auto k = cl.GetInt("k", 10);
  auto beam = cl.GetInt("beam", 0);
  if (!user.ok()) return Fail(user.status());
  if (!k.ok()) return Fail(k.status());
  if (!beam.ok()) return Fail(beam.status());
  if (user.value() < 0) return Usage();
  auto client = ConnectFlag(cl);
  if (!client.ok()) return Fail(client.status());
  auto top = client.value().TopK(static_cast<int32_t>(user.value()),
                                 static_cast<int32_t>(k.value()),
                                 static_cast<int32_t>(beam.value()));
  if (!top.ok()) return Fail(top.status());
  for (const Recommendation& rec : top.value()) {
    std::printf("%d\t%.9g\n", rec.item, rec.score);
  }
  PrintTrace(client.value());
  return 0;
}

int RunHealth(const CommandLine& cl) {
  auto client = ConnectFlag(cl);
  if (!client.ok()) return Fail(client.status());
  auto generation = client.value().HealthGeneration();
  if (!generation.ok()) return Fail(generation.status());
  std::printf("ok generation=%lld\n",
              static_cast<long long>(generation.value()));
  return 0;
}

int RunStats(const CommandLine& cl) {
  auto client = ConnectFlag(cl);
  if (!client.ok()) return Fail(client.status());
  auto json = client.value().Stats();
  if (!json.ok()) return Fail(json.status());
  std::printf("%s\n", json.value().c_str());
  return 0;
}

int RunMetrics(const CommandLine& cl) {
  auto client = ConnectFlag(cl);
  if (!client.ok()) return Fail(client.status());
  auto text = client.value().Metrics();
  if (!text.ok()) return Fail(text.status());
  std::printf("%s", text.value().c_str());
  return 0;
}

int RunTraceDump(const CommandLine& cl) {
  auto client = ConnectFlag(cl);
  if (!client.ok()) return Fail(client.status());
  auto jsonl = client.value().TraceDump();
  if (!jsonl.ok()) return Fail(jsonl.status());
  std::printf("%s", jsonl.value().c_str());
  return 0;
}

int RunReload(const CommandLine& cl) {
  auto client = ConnectFlag(cl);
  if (!client.ok()) return Fail(client.status());
  auto generation = client.value().Reload(cl.GetString("store"));
  if (!generation.ok()) return Fail(generation.status());
  std::printf("reloaded generation=%lld\n",
              static_cast<long long>(generation.value()));
  return 0;
}

int Run(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) return Fail(cl.status());
  const std::string& command = cl.value().command();
  if (command == "serve") return RunServe(cl.value());
  if (command == "score") return RunScore(cl.value());
  if (command == "topk") return RunTopK(cl.value());
  if (command == "health") return RunHealth(cl.value());
  if (command == "stats") return RunStats(cl.value());
  if (command == "metrics") return RunMetrics(cl.value());
  if (command == "trace-dump") return RunTraceDump(cl.value());
  if (command == "reload") return RunReload(cl.value());
  return Usage();
}

}  // namespace
}  // namespace hignn

int main(int argc, char** argv) { return hignn::Run(argc, argv); }
