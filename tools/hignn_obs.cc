// hignn_obs — offline analyzer for the serving path's observability
// artifacts (DESIGN.md §17).
//
// Joins the per-request event log (`hignn_serve serve --events-out`, or
// the `trace-dump` client verb piped to a file) with an optional Chrome
// trace (`--trace-out`) and prints:
//
//   * a per-phase latency table (count / p50 / p95 / p99 / max) over the
//     same six phase deltas the server's serve.phase.* histograms record,
//   * one line per slow exemplar naming its dominant phase — the single
//     place the request spent most of its time, which is the attribution
//     operators act on,
//   * when a Chrome trace is given, the top spans by total duration so
//     the request-level and span-level views can be eyeballed together.
//
//   hignn_obs analyze --events /tmp/events.jsonl [--trace /tmp/trace.json]
//       [--top 10]
//
// Output is plain text with stable column headers so CI can grep it.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "util/flags.h"

namespace hignn {
namespace {

int Usage() {
  std::fprintf(stderr, R"(usage: hignn_obs analyze --events EVENTS.jsonl
    [--trace TRACE.json]  (Chrome trace from hignn_serve --trace-out)
    [--top 10]            (spans to show from the Chrome trace)

Reads the per-request event log the scoring server dumps (--events-out,
or the trace-dump wire verb) and attributes latency to serving phases.
)");
  return 2;
}

/// One parsed event-log line; mirrors obs::Event without depending on it
/// (the analyzer must keep reading logs from older/newer builds whose
/// struct layout drifted — the JSONL keys are the contract, not the ABI).
struct LoggedEvent {
  std::string request_id;
  int64_t duration_us = 0;
  bool slow = false;
  bool ok = false;
  int64_t accept_us = -1;
  int64_t parse_us = -1;
  int64_t enqueue_us = -1;
  int64_t batch_close_us = -1;
  int64_t rows_assembled_us = -1;
  int64_t forward_done_us = -1;
  int64_t index_descent_us = -1;
  int64_t reply_flushed_us = -1;
};

/// Finds `"key": <value>` in a JSON object line and returns the raw value
/// token (quotes stripped). The event log and Chrome trace are emitted by
/// our own fixed-format writers, so a scanner is sufficient — no general
/// JSON parser needed (or available).
bool ExtractField(const std::string& line, const std::string& key,
                  std::string* out) {
  const std::string needle = "\"" + key + "\": ";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  size_t begin = pos + needle.size();
  if (begin >= line.size()) return false;
  size_t end;
  if (line[begin] == '"') {
    ++begin;
    end = line.find('"', begin);
  } else {
    end = line.find_first_of(",}", begin);
  }
  if (end == std::string::npos || end < begin) return false;
  *out = line.substr(begin, end - begin);
  return true;
}

int64_t ExtractI64(const std::string& line, const std::string& key,
                   int64_t fallback) {
  std::string raw;
  if (!ExtractField(line, key, &raw)) return fallback;
  return static_cast<int64_t>(std::strtoll(raw.c_str(), nullptr, 10));
}

bool ExtractBool(const std::string& line, const std::string& key) {
  std::string raw;
  return ExtractField(line, key, &raw) && raw == "true";
}

/// Nearest-rank percentile over a sorted ascending sample.
int64_t Percentile(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = std::ceil(p * static_cast<double>(sorted.size()));
  const size_t index = static_cast<size_t>(
      std::max<double>(1.0, std::min(rank, static_cast<double>(sorted.size()))));
  return sorted[index - 1];
}

/// The six phase deltas, paired exactly like ServeMetrics::RecordPhases —
/// a phase exists only when both boundary stamps are present, and the
/// assemble/reply phases start wherever the verb's path last stamped.
struct PhaseDeltas {
  static constexpr int kNumPhases = 6;
  static const char* Name(int phase) {
    static const char* const kNames[kNumPhases] = {
        "parse", "queue_wait", "index", "assemble", "forward", "reply"};
    return kNames[phase];
  }
  /// Delta for `phase` in microseconds, or -1 when the event never
  /// crossed that phase.
  static int64_t Of(const LoggedEvent& e, int phase) {
    const auto delta = [](int64_t end, int64_t begin) {
      return (begin >= 0 && end >= begin) ? end - begin : int64_t{-1};
    };
    switch (phase) {
      case 0:
        return delta(e.parse_us, e.accept_us);
      case 1:
        return delta(e.batch_close_us, e.enqueue_us);
      case 2:
        return delta(e.index_descent_us, e.parse_us);
      case 3:
        return delta(e.rows_assembled_us,
                     e.batch_close_us >= 0
                         ? e.batch_close_us
                         : e.index_descent_us >= 0 ? e.index_descent_us
                                                   : e.parse_us);
      case 4:
        return delta(e.forward_done_us, e.rows_assembled_us);
      case 5:
        return delta(e.reply_flushed_us,
                     e.forward_done_us >= 0 ? e.forward_done_us : e.parse_us);
      default:
        return -1;
    }
  }
};

int RunAnalyze(const CommandLine& cl) {
  const std::string events_path = cl.GetString("events");
  if (events_path.empty()) return Usage();
  auto top = cl.GetInt("top", 10);
  if (!top.ok()) {
    std::fprintf(stderr, "error: %s\n", top.status().ToString().c_str());
    return 1;
  }

  std::ifstream in(events_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", events_path.c_str());
    return 1;
  }
  std::vector<LoggedEvent> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.find("\"request_id\"") == std::string::npos) {
      continue;
    }
    LoggedEvent event;
    ExtractField(line, "request_id", &event.request_id);
    event.duration_us = ExtractI64(line, "duration_us", 0);
    event.slow = ExtractBool(line, "slow");
    event.ok = ExtractBool(line, "ok");
    event.accept_us = ExtractI64(line, "accept_us", -1);
    event.parse_us = ExtractI64(line, "parse_us", -1);
    event.enqueue_us = ExtractI64(line, "enqueue_us", -1);
    event.batch_close_us = ExtractI64(line, "batch_close_us", -1);
    event.rows_assembled_us = ExtractI64(line, "rows_assembled_us", -1);
    event.forward_done_us = ExtractI64(line, "forward_done_us", -1);
    event.index_descent_us = ExtractI64(line, "index_descent_us", -1);
    event.reply_flushed_us = ExtractI64(line, "reply_flushed_us", -1);
    events.push_back(event);
  }

  int64_t slow_count = 0;
  int64_t traced_count = 0;
  for (const LoggedEvent& event : events) {
    if (event.slow) ++slow_count;
    if (event.request_id != "0000000000000000") ++traced_count;
  }
  std::printf("hignn_obs: %zu events (%lld slow, %lld traced) from %s\n",
              events.size(), static_cast<long long>(slow_count),
              static_cast<long long>(traced_count), events_path.c_str());

  std::printf("phase latency percentiles (us):\n");
  std::printf("  %-12s %8s %10s %10s %10s %10s\n", "phase", "count", "p50",
              "p95", "p99", "max");
  for (int phase = 0; phase < PhaseDeltas::kNumPhases; ++phase) {
    std::vector<int64_t> samples;
    for (const LoggedEvent& event : events) {
      const int64_t delta = PhaseDeltas::Of(event, phase);
      if (delta >= 0) samples.push_back(delta);
    }
    std::sort(samples.begin(), samples.end());
    std::printf("  %-12s %8zu %10lld %10lld %10lld %10lld\n",
                PhaseDeltas::Name(phase), samples.size(),
                static_cast<long long>(Percentile(samples, 0.50)),
                static_cast<long long>(Percentile(samples, 0.95)),
                static_cast<long long>(Percentile(samples, 0.99)),
                static_cast<long long>(
                    samples.empty() ? 0 : samples.back()));
  }

  // Slow exemplars: name the single phase that dominated each one. A
  // request with no phase deltas at all (a health probe that somehow
  // tripped the threshold) is attributed to "unknown".
  std::printf("slow exemplars: %lld\n", static_cast<long long>(slow_count));
  for (const LoggedEvent& event : events) {
    if (!event.slow) continue;
    int dominant = -1;
    int64_t dominant_us = -1;
    for (int phase = 0; phase < PhaseDeltas::kNumPhases; ++phase) {
      const int64_t delta = PhaseDeltas::Of(event, phase);
      if (delta > dominant_us) {
        dominant_us = delta;
        dominant = phase;
      }
    }
    std::printf("  request %s duration_us=%lld dominant=%s dominant_us=%lld\n",
                event.request_id.c_str(),
                static_cast<long long>(event.duration_us),
                dominant >= 0 ? PhaseDeltas::Name(dominant) : "unknown",
                static_cast<long long>(dominant >= 0 ? dominant_us : 0));
  }

  const std::string trace_path = cl.GetString("trace");
  if (!trace_path.empty()) {
    std::ifstream trace_in(trace_path);
    if (!trace_in) {
      std::fprintf(stderr, "error: cannot open %s\n", trace_path.c_str());
      return 1;
    }
    // One span per line (the writer emits them that way); aggregate
    // count and total duration per span name.
    struct SpanAgg {
      int64_t count = 0;
      int64_t total_us = 0;
    };
    std::map<std::string, SpanAgg> spans;
    while (std::getline(trace_in, line)) {
      std::string name;
      if (!ExtractField(line, "name", &name)) continue;
      SpanAgg& agg = spans[name];
      agg.count += 1;
      agg.total_us += ExtractI64(line, "dur", 0);
    }
    std::vector<std::pair<std::string, SpanAgg>> ranked(spans.begin(),
                                                        spans.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.second.total_us != b.second.total_us) {
                  return a.second.total_us > b.second.total_us;
                }
                return a.first < b.first;
              });
    std::printf("trace spans (top %lld by total duration):\n",
                static_cast<long long>(top.value()));
    std::printf("  %-28s %8s %12s\n", "span", "count", "total_us");
    const size_t limit =
        std::min(ranked.size(), static_cast<size_t>(
                                    std::max<int64_t>(0, top.value())));
    for (size_t i = 0; i < limit; ++i) {
      std::printf("  %-28s %8lld %12lld\n", ranked[i].first.c_str(),
                  static_cast<long long>(ranked[i].second.count),
                  static_cast<long long>(ranked[i].second.total_us));
    }
  }
  return 0;
}

int Run(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) {
    std::fprintf(stderr, "error: %s\n", cl.status().ToString().c_str());
    return 1;
  }
  if (cl.value().command() == "analyze") return RunAnalyze(cl.value());
  return Usage();
}

}  // namespace
}  // namespace hignn

int main(int argc, char** argv) { return hignn::Run(argc, argv); }
