// hignn_lint — determinism-and-safety static analysis for the hignn tree.
//
// The invariant catalog (DESIGN.md §9) encodes guarantees earlier work
// bought at runtime: bitwise-deterministic parallel kernels and atomic,
// checksummed artifact IO. This tool makes violating them a build failure
// instead of a code-review hope. It is a token-level analyzer (comments and
// string literals stripped, balanced-bracket matching, no full AST) over
// the file list given on the command line or extracted from a
// compile_commands.json.
//
// Rules:
//   unordered-iter            range-for over std::unordered_map/set —
//                             hash order leaks into float sums, serialized
//                             bytes or argmax ties. Whitelist:
//                             src/util/ordered.h (sorted extraction).
//   raw-write                 std::ofstream / fopen / FILE* outside
//                             src/util/io.cc — artifact writes must use
//                             the atomic tmp+fsync+rename path.
//   nondet-source             rand() / std::random_device / time() /
//                             ::now() outside util/rng.h + util/timer.h;
//                             WallTimer / steady_clock wall-clock reads
//                             outside the telemetry scope (src/obs/,
//                             bench/, examples/).
//   naked-thread              std::thread / std::async / #pragma omp —
//                             concurrency only via util/thread_pool.
//   parallel-float-reduction  += / -= into a file-scope float/double
//                             inside a ParallelFor body — reductions must
//                             be fixed-order ParallelForChunks merges.
//   simd-guard                raw SIMD intrinsics / vector types (_mm*,
//                             __m128/256/512, NEON v*q_ / float32x*)
//                             outside src/nn/simd.h + simd_*.cc — vector
//                             code is centralized behind the dispatch
//                             shim so the scalar fallback and the bitwise
//                             parity tests cannot rot.
//   signal-safety             inside a function installed as a signal
//                             handler (sa_handler/sa_sigaction field or
//                             signal() registration), only writes to
//                             volatile std::sig_atomic_t / std::atomic
//                             state and atomic member ops are allowed —
//                             logging, allocation, and locks are
//                             async-signal-unsafe; real work belongs in
//                             the main loop that polls the flag.
//   lock-discipline           raw std::mutex / lock_guard / unique_lock /
//                             condition_variable types and manual
//                             .lock()/.unlock()/.try_lock() calls outside
//                             util/mutex.h — critical sections are scoped
//                             hignn::MutexLock blocks over the annotated
//                             Mutex shim, so Clang's -Wthread-safety can
//                             see their extent; also flags blocking calls
//                             (poll/accept/recv, sleeps, engine forwards)
//                             made while a MutexLock guard is in scope.
//   guard-annotation          a class that declares a mutex member must
//                             annotate every sibling mutable field with
//                             HIGNN_GUARDED_BY(<mutex>) (const, atomic,
//                             thread, Mutex/CondVar members are exempt) —
//                             the locking contract lives in the type, not
//                             in comments.
//   unchecked-status          a call to a Load*/Save*/Write* function
//                             whose declared return type is Status /
//                             Result<...> / bool, with the result
//                             discarded — IO errors must be propagated or
//                             explicitly (void)-cast under an allow.
//
// Two-pass, cross-file analysis: pass 1 strips every input file once and
// builds a symbol table mapping each Load*/Save*/Write* function to its
// declared return category, so a function declared in src/util/io.h is
// matched against a careless call site in tools/ or bench/ even though
// they were handed to the tool as separate files. Pass 2 runs the rules
// per file against the merged table.
//
// Escape hatch: `// hignn-lint: allow(<rule>) <justification>` on the
// violating line or the line above suppresses the diagnostic; suppressions
// are tallied and reported so audits can review every exemption.
// `--allow-report` prints a machine-readable JSON inventory of every such
// annotation in the scanned tree (rule, file, line, justification) and
// exits 0 — CI archives it so allowlist growth shows up in diffs.
//
// Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Diagnostic {
  std::string path;
  int line;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* id;
  const char* summary;
  std::vector<std::string> allowed_paths;  // suffix match, '/'-normalized
  /// Directory-prefix scope for the rule's *scoped tokens* (the raw-write
  /// socket syscalls ::write/::send, and the nondet-source wall-clock
  /// reads WallTimer/steady_clock): inside these directories the scoped
  /// tokens are permitted wholesale — a reviewed architectural exemption,
  /// not a per-line suppression — while every other token of the rule
  /// stays active. Distinct from allowed_paths, which disables the whole
  /// rule for a file.
  std::vector<std::string> scoped_dirs;  // prefix match, '/'-normalized
};

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"unordered-iter",
       "no iteration over std::unordered_map/std::unordered_set in "
       "order-sensitive code; use ordered containers or util/ordered.h "
       "sorted extraction",
       {"src/util/ordered.h"},
       {}},
      {"raw-write",
       "no raw std::ofstream/fopen/FILE* writes and no ::write()/::send() "
       "byte output; artifact writes go through the atomic util/io API, "
       "socket IO through the src/serve/ wire layer",
       {"src/util/io.cc", "src/util/io.h"},
       {"src/serve/"}},
      {"nondet-source",
       "no rand()/std::random_device/std::mt19937-family engines/time()/"
       "::now(), and no WallTimer/steady_clock wall-clock reads outside "
       "the telemetry layer; randomness via util/rng.h (request IDs via "
       "serve/request_id.h), timing via src/obs/ (observation-only)",
       {"src/util/rng.h", "src/util/rng.cc", "src/util/timer.h",
        "src/serve/request_id.h", "src/serve/request_id.cc"},
       {"src/obs/", "bench/", "examples/"}},
      {"naked-thread",
       "no std::thread/std::async/#pragma omp; concurrency only via "
       "util/thread_pool",
       {"src/util/thread_pool.h", "src/util/thread_pool.cc"},
       {}},
      {"parallel-float-reduction",
       "no floating-point reductions in ParallelFor bodies; use "
       "ParallelForChunks with a fixed-order merge",
       {},
       {}},
      {"simd-guard",
       "no raw SIMD intrinsics or vector types outside the nn/simd "
       "dispatch shim; add kernels to the simd_*.cc ISA tables so the "
       "scalar fallback and parity tests stay in lockstep",
       {"src/nn/simd.h", "src/nn/simd_avx2.cc", "src/nn/simd_neon.cc"},
       {}},
      {"signal-safety",
       "signal handlers may only set volatile std::sig_atomic_t flags or "
       "std::atomic values; calls and other writes are async-signal-unsafe "
       "— poll the flag from the main loop instead",
       {},
       {}},
      {"lock-discipline",
       "no raw std::mutex/lock_guard/unique_lock/condition_variable and no "
       "manual .lock()/.unlock() outside util/mutex.h; critical sections "
       "are scoped hignn::MutexLock blocks, and blocking calls (poll/"
       "accept/sleep/score) must not run while a MutexLock is in scope",
       {"src/util/mutex.h"},
       {}},
      {"guard-annotation",
       "a class that declares a mutex member must annotate every mutable "
       "sibling field with HIGNN_GUARDED_BY(<mutex>); const/atomic/thread/"
       "CondVar members are exempt — the locking contract lives in the "
       "type, not in comments",
       {"src/util/mutex.h"},
       {}},
      {"unchecked-status",
       "the Status/Result/bool return of a Load*/Save*/Write* function "
       "must be consumed at every call site (declarations are collected "
       "across all scanned files in pass 1); a deliberate best-effort "
       "write is spelled (void)Call() under an allow",
       {},
       {}},
  };
  return kRules;
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsWordBoundedAt(const std::string& text, size_t pos, size_t len) {
  if (pos > 0 && IsWordChar(text[pos - 1])) return false;
  if (pos + len < text.size() && IsWordChar(text[pos + len])) return false;
  return true;
}

size_t SkipSpaces(const std::string& text, size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  return pos;
}

// Last non-space position strictly before `pos`, or npos.
size_t PrevNonSpace(const std::string& text, size_t pos) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(text[pos]))) return pos;
  }
  return std::string::npos;
}

/// A source file reduced to analyzable form: `code` mirrors the original
/// byte-for-byte except comment and string/char-literal contents are
/// blanked to spaces (newlines preserved, so offsets map to lines), and
/// `comments` holds each line's comment text for allow() parsing.
struct StrippedFile {
  std::string code;
  std::vector<std::string> comments;  // 1-indexed by line (index 0 unused)
  std::vector<size_t> line_starts;    // offset of each line's first char
};

StrippedFile StripCommentsAndStrings(const std::string& raw) {
  StrippedFile out;
  out.code = raw;
  out.comments.assign(2, "");
  out.line_starts.push_back(0);

  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;
  int line = 1;
  auto comment_at = [&](int l) -> std::string& {
    while (static_cast<int>(out.comments.size()) <= l) {
      out.comments.emplace_back();
    }
    return out.comments[static_cast<size_t>(l)];
  };

  for (size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
    if (c == '\n') {
      ++line;
      out.line_starts.push_back(i + 1);
      if (state == State::kLine) state = State::kCode;
      continue;  // newline survives in code in every state
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out.code[i] = out.code[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out.code[i] = out.code[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          // R"delim( ... )delim" raw string?
          if (i > 0 && raw[i - 1] == 'R' &&
              (i < 2 || !IsWordChar(raw[i - 2]))) {
            size_t p = i + 1;
            while (p < raw.size() && raw[p] != '(' && raw[p] != '\n') ++p;
            if (p < raw.size() && raw[p] == '(') {
              raw_delim = ")" + raw.substr(i + 1, p - i - 1) + "\"";
              state = State::kRaw;
              for (size_t b = i; b <= p; ++b) {
                if (out.code[b] != '\n') out.code[b] = ' ';
              }
              i = p;
              break;
            }
          }
          state = State::kString;
        } else if (c == '\'' && (i == 0 || !IsWordChar(raw[i - 1]))) {
          // The word-char guard keeps C++14 digit separators (1'000'000)
          // from opening a bogus char-literal state.
          state = State::kChar;
        }
        break;
      case State::kLine:
      case State::kBlock:
        comment_at(line) += c;
        if (state == State::kBlock && c == '*' && next == '/') {
          out.code[i] = out.code[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else {
          out.code[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          out.code[i] = ' ';
          if (i + 1 < raw.size() && raw[i + 1] != '\n') {
            out.code[i + 1] = ' ';
            ++i;
          }
        } else if (c == quote) {
          state = State::kCode;  // keep closing quote char
        } else {
          out.code[i] = ' ';
        }
        break;
      }
      case State::kRaw:
        if (raw.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t b = 0; b < raw_delim.size(); ++b) out.code[i + b] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (out.code[i] != '\n') {
          out.code[i] = ' ';
        }
        break;
    }
  }
  return out;
}

int LineOf(const StrippedFile& file, size_t pos) {
  auto it = std::upper_bound(file.line_starts.begin(), file.line_starts.end(),
                             pos);
  return static_cast<int>(it - file.line_starts.begin());
}

// Position just past the bracket that closes the one at `open` (which must
// hold `open_ch`), or npos if unbalanced.
size_t MatchBracket(const std::string& code, size_t open, char open_ch,
                    char close_ch) {
  int depth = 0;
  for (size_t i = open; i < code.size(); ++i) {
    if (code[i] == open_ch) {
      ++depth;
    } else if (code[i] == close_ch) {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

// Closes the template argument list whose '<' is at `open`. Treats '>'
// inside "->" as an arrow, not a close.
size_t MatchAngle(const std::string& code, size_t open) {
  int depth = 0;
  for (size_t i = open; i < code.size(); ++i) {
    if (code[i] == '<') {
      ++depth;
    } else if (code[i] == '>' && (i == 0 || code[i - 1] != '-')) {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

std::string TrailingIdentifier(const std::string& expr) {
  size_t end = expr.size();
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(expr[end - 1]))) {
    --end;
  }
  size_t begin = end;
  while (begin > 0 && IsWordChar(expr[begin - 1])) --begin;
  return expr.substr(begin, end - begin);
}

// ---- cross-file symbol table ---------------------------------------------

/// Declared return category of a Load*/Save*/Write* function.
enum class ReturnCat { kStatus, kResult, kBool, kVoid };

const char* ReturnCatName(ReturnCat cat) {
  switch (cat) {
    case ReturnCat::kStatus: return "Status";
    case ReturnCat::kResult: return "Result<...>";
    case ReturnCat::kBool: return "bool";
    case ReturnCat::kVoid: return "void";
  }
  return "?";
}

/// Built in pass 1 over *every* input file, consulted in pass 2 — this is
/// what makes unchecked-status cross-file: the declaration and the
/// careless call site are usually in different translation units.
struct SymbolTable {
  /// Function name -> declared return category. A name ever declared void
  /// anywhere vetoes the whole name (kVoid wins merges): overload sets
  /// that mix checkable and void returns are not worth guessing about.
  std::map<std::string, ReturnCat> status_fns;
};

/// True for Load/Save/Write-prefixed identifiers where the prefix is a
/// word in its own right (LoadGraph yes, Loader/Writer no — the character
/// after the prefix must not be lowercase).
bool HasStatusPrefix(const std::string& name) {
  static const char* kPrefixes[] = {"Load", "Save", "Write"};
  for (const char* prefix : kPrefixes) {
    const size_t len = std::strlen(prefix);
    if (name.size() >= len && name.compare(0, len, prefix) == 0 &&
        (name.size() == len ||
         !std::islower(static_cast<unsigned char>(name[len])))) {
      return true;
    }
  }
  return false;
}

/// Per-file analysis context.
class FileLinter {
 public:
  FileLinter(std::string display_path, const std::string& raw)
      : path_(std::move(display_path)), file_(StripCommentsAndStrings(raw)) {}

  const std::string& path() const { return path_; }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  const std::map<std::string, int>& allow_counts() const {
    return allow_counts_;
  }

  /// Pass 1: contribute this file's Load*/Save*/Write* declarations to the
  /// cross-file symbol table. Scans for a return-type token (Status,
  /// Result<...>, bool, void) followed by a possibly-qualified identifier
  /// and an opening paren — which covers free functions, member
  /// declarations and out-of-line definitions alike.
  void CollectSymbols(SymbolTable* symbols) const {
    const std::string& code = file_.code;
    struct TypeTok {
      const char* word;
      ReturnCat cat;
    };
    static const TypeTok kTypes[] = {{"Status", ReturnCat::kStatus},
                                     {"Result", ReturnCat::kResult},
                                     {"bool", ReturnCat::kBool},
                                     {"void", ReturnCat::kVoid}};
    for (const TypeTok& type : kTypes) {
      const size_t type_len = std::strlen(type.word);
      size_t pos = 0;
      while ((pos = code.find(type.word, pos)) != std::string::npos) {
        const size_t at = pos;
        pos += type_len;
        if (at > 0 && IsWordChar(code[at - 1])) continue;
        size_t after = at + type_len;
        if (type.cat == ReturnCat::kResult) {
          if (after >= code.size() || code[after] != '<') continue;
          after = MatchAngle(code, after);
          if (after == std::string::npos) continue;
        } else if (after < code.size() && IsWordChar(code[after])) {
          continue;
        }
        // Possibly-qualified identifier; the final component is the name.
        size_t id = SkipSpaces(code, after);
        std::string name;
        while (true) {
          size_t id_end = id;
          while (id_end < code.size() && IsWordChar(code[id_end])) ++id_end;
          if (id_end == id) {
            name.clear();
            break;
          }
          name = code.substr(id, id_end - id);
          if (code.compare(id_end, 2, "::") == 0) {
            id = id_end + 2;
            continue;
          }
          id = id_end;
          break;
        }
        if (name.empty() || !HasStatusPrefix(name)) continue;
        const size_t paren = SkipSpaces(code, id);
        if (paren >= code.size() || code[paren] != '(') continue;
        auto it = symbols->status_fns.find(name);
        if (it == symbols->status_fns.end()) {
          symbols->status_fns.emplace(name, type.cat);
        } else if (type.cat == ReturnCat::kVoid) {
          it->second = ReturnCat::kVoid;  // veto: mixed overload set
        }
      }
    }
  }

  /// One `// hignn-lint: allow(<rule>) <justification>` occurrence, for
  /// the --allow-report inventory.
  struct AllowAnnotation {
    std::string file;
    int line;
    std::string rule;
    std::string justification;
  };

  void CollectAllowAnnotations(std::vector<AllowAnnotation>* out) const {
    static const std::string kNeedle = "hignn-lint: allow(";
    for (size_t line = 1; line < file_.comments.size(); ++line) {
      const std::string& comment = file_.comments[line];
      size_t pos = 0;
      while ((pos = comment.find(kNeedle, pos)) != std::string::npos) {
        const size_t rule_begin = pos + kNeedle.size();
        const size_t close = comment.find(')', rule_begin);
        if (close == std::string::npos) break;
        std::string justification = comment.substr(close + 1);
        const size_t first = justification.find_first_not_of(" \t");
        const size_t last = justification.find_last_not_of(" \t");
        justification = first == std::string::npos
                            ? std::string()
                            : justification.substr(first, last - first + 1);
        out->push_back({path_, static_cast<int>(line),
                        comment.substr(rule_begin, close - rule_begin),
                        justification});
        pos = close + 1;
      }
    }
  }

  /// Pass 2. `scoped_rules` lists rule ids whose scoped tokens (RuleInfo::
  /// scoped_dirs) are exempt for this file; `symbols` is the cross-file
  /// table assembled by pass 1 over every input.
  void Run(const std::set<std::string>& active_rules,
           const std::set<std::string>& scoped_rules,
           const SymbolTable& symbols) {
    if (active_rules.count("unordered-iter")) CheckUnorderedIter();
    if (active_rules.count("raw-write")) {
      CheckRawWrite(/*sockets_scoped=*/scoped_rules.count("raw-write") > 0);
    }
    if (active_rules.count("nondet-source")) {
      CheckNondetSource(
          /*wallclock_scoped=*/scoped_rules.count("nondet-source") > 0);
    }
    if (active_rules.count("naked-thread")) CheckNakedThread();
    if (active_rules.count("parallel-float-reduction")) {
      CheckParallelFloatReduction();
    }
    if (active_rules.count("simd-guard")) CheckSimdGuard();
    if (active_rules.count("signal-safety")) CheckSignalSafety();
    if (active_rules.count("lock-discipline")) CheckLockDiscipline();
    if (active_rules.count("guard-annotation")) CheckGuardAnnotation();
    if (active_rules.count("unchecked-status")) CheckUncheckedStatus(symbols);
  }

 private:
  void Report(size_t pos, const std::string& rule,
              const std::string& message) {
    const int line = LineOf(file_, pos);
    if (IsAllowed(rule, line)) {
      ++allow_counts_[rule];
      return;
    }
    diagnostics_.push_back({path_, line, rule, message});
  }

  bool IsAllowed(const std::string& rule, int line) const {
    const std::string needle = "hignn-lint: allow(" + rule + ")";
    for (int l = line - 1; l <= line; ++l) {
      if (l < 1 || l >= static_cast<int>(file_.comments.size())) continue;
      if (file_.comments[static_cast<size_t>(l)].find(needle) !=
          std::string::npos) {
        return true;
      }
    }
    return false;
  }

  // ---- rule: unordered-iter ----------------------------------------------

  // Scans declarations of unordered containers. Names declared directly as
  // unordered_{map,set} land in `direct_`; names whose *elements* are
  // unordered (e.g. std::vector<std::unordered_map<...>> v) land in
  // `element_`, so `for (x : v)` is fine but `for (x : v[i])` is flagged.
  void CollectUnorderedNames() {
    const std::string& code = file_.code;
    for (const char* token : {"unordered_map<", "unordered_set<"}) {
      const size_t token_len = std::strlen(token);
      size_t pos = 0;
      while ((pos = code.find(token, pos)) != std::string::npos) {
        const size_t at = pos;
        pos += token_len;
        if (at > 0 && IsWordChar(code[at - 1])) continue;
        // Nested inside another template's argument list?
        size_t qual_begin = at;
        while (qual_begin > 0 &&
               (IsWordChar(code[qual_begin - 1]) ||
                code[qual_begin - 1] == ':')) {
          --qual_begin;
        }
        const size_t before = PrevNonSpace(code, qual_begin);
        const bool nested =
            before != std::string::npos &&
            (code[before] == '<' || code[before] == ',');
        // Close this container's own template argument list.
        size_t after = MatchAngle(code, at + token_len - 1);
        if (after == std::string::npos) continue;
        // Consume outer closers and declarator decorations.
        while (after < code.size() &&
               (code[after] == '>' || code[after] == '&' ||
                code[after] == '*' ||
                std::isspace(static_cast<unsigned char>(code[after])))) {
          ++after;
        }
        size_t id_end = after;
        while (id_end < code.size() && IsWordChar(code[id_end])) ++id_end;
        if (id_end == after) continue;
        const std::string name = code.substr(after, id_end - after);
        (nested ? element_ : direct_).insert(name);
      }
    }
    CollectAutoAliases();
  }

  // `auto& x = votes[q];` binds x to an unordered element; track the alias
  // so iterating it is caught. Single top-down pass — declarations precede
  // uses, so chained aliases resolve naturally.
  void CollectAutoAliases() {
    const std::string& code = file_.code;
    size_t pos = 0;
    while ((pos = code.find("auto", pos)) != std::string::npos) {
      const size_t at = pos;
      pos += 4;
      if (!IsWordBoundedAt(code, at, 4)) continue;
      size_t p = at + 4;
      while (p < code.size() &&
             (code[p] == '&' || code[p] == '*' ||
              std::isspace(static_cast<unsigned char>(code[p])))) {
        ++p;
      }
      size_t id_end = p;
      while (id_end < code.size() && IsWordChar(code[id_end])) ++id_end;
      if (id_end == p) continue;
      const std::string name = code.substr(p, id_end - p);
      size_t eq = SkipSpaces(code, id_end);
      if (eq >= code.size() || code[eq] != '=' ||
          (eq + 1 < code.size() && code[eq + 1] == '=')) {
        continue;
      }
      const size_t semi = code.find(';', eq);
      if (semi == std::string::npos) continue;
      std::string expr = code.substr(eq + 1, semi - eq - 1);
      bool had_index = false;
      size_t end = expr.find_last_not_of(" \t\n");
      while (end != std::string::npos && expr[end] == ']') {
        int d = 0;
        size_t open = end;
        while (open > 0) {
          if (expr[open] == ']') ++d;
          else if (expr[open] == '[' && --d == 0) break;
          --open;
        }
        expr = expr.substr(0, open);
        had_index = true;
        end = expr.find_last_not_of(" \t\n");
      }
      if (end == std::string::npos || expr[end] == ')') continue;
      const std::string base = TrailingIdentifier(expr);
      if (base.empty()) continue;
      if ((had_index && element_.count(base)) ||
          (!had_index && direct_.count(base))) {
        direct_.insert(name);
      }
    }
  }

  void CheckUnorderedIter() {
    CollectUnorderedNames();
    const std::string& code = file_.code;
    size_t pos = 0;
    while ((pos = code.find("for", pos)) != std::string::npos) {
      const size_t at = pos;
      pos += 3;
      if (!IsWordBoundedAt(code, at, 3)) continue;
      const size_t paren = SkipSpaces(code, at + 3);
      if (paren >= code.size() || code[paren] != '(') continue;
      const size_t close = MatchBracket(code, paren, '(', ')');
      if (close == std::string::npos) continue;
      // Top-level ':' (not '::') marks a range-for.
      size_t colon = std::string::npos;
      int depth = 0;
      for (size_t i = paren + 1; i + 1 < close; ++i) {
        const char c = code[i];
        if (c == '(' || c == '[' || c == '{') ++depth;
        else if (c == ')' || c == ']' || c == '}') --depth;
        else if (c == ':' && depth == 0) {
          if (code[i + 1] == ':' || code[i - 1] == ':') continue;
          colon = i;
          break;
        }
      }
      if (colon == std::string::npos) continue;
      std::string range = code.substr(colon + 1, close - 1 - (colon + 1));
      // Direct mention (e.g. a cast or inline construction).
      const bool mentions_unordered =
          range.find("unordered_map") != std::string::npos ||
          range.find("unordered_set") != std::string::npos;
      // Strip trailing subscripts to find the base name.
      bool had_index = false;
      size_t end = range.find_last_not_of(" \t\n");
      while (end != std::string::npos && range[end] == ']') {
        int d = 0;
        size_t open = end;
        while (open > 0) {
          if (range[open] == ']') ++d;
          else if (range[open] == '[' && --d == 0) break;
          --open;
        }
        range = range.substr(0, open);
        had_index = true;
        end = range.find_last_not_of(" \t\n");
      }
      if (end != std::string::npos && range[end] == ')') {
        // Function-call result (e.g. SortedEntries(...)): fresh, ordered
        // by contract — not this rule's business.
        if (!mentions_unordered) continue;
      }
      const std::string base = TrailingIdentifier(range);
      const bool hits = mentions_unordered ||
                        (!base.empty() &&
                         ((had_index && element_.count(base)) ||
                          (!had_index && direct_.count(base))));
      if (!hits) continue;
      Report(at, "unordered-iter",
             "range-for over unordered container '" +
                 (base.empty() ? std::string("<expr>") : base) +
                 "'; use an ordered container or util/ordered.h "
                 "(SortedEntries/SortedKeys/MaxValueEntry)");
    }
  }

  // ---- rule: raw-write ---------------------------------------------------

  void CheckRawWrite(bool sockets_scoped) {
    FlagWord("ofstream", "raw-write",
             "raw 'std::ofstream' write outside util/io; use "
             "BinaryWriter or AtomicWriteTextFile");
    FlagCall("fopen", "raw-write",
             "raw 'fopen' write outside util/io; use BinaryWriter or "
             "AtomicWriteTextFile");
    FlagCall("freopen", "raw-write",
             "raw 'freopen' outside util/io; use BinaryWriter or "
             "AtomicWriteTextFile");
    // Socket/file-descriptor byte output. Scoped (not per-line) allowance:
    // the serve wire layer is the audited home of frame IO, so these two
    // tokens — and only these — are exempt under src/serve/.
    if (!sockets_scoped) {
      FlagGlobalCall("write", "raw-write",
                     "raw '::write()' byte output outside the serve wire "
                     "layer; file IO goes through util/io, frame IO "
                     "through src/serve/wire");
      FlagGlobalCall("send", "raw-write",
                     "raw '::send()' socket write outside the serve wire "
                     "layer; frame IO goes through src/serve/wire");
    }
    // FILE* / FILE * declarations.
    const std::string& code = file_.code;
    size_t pos = 0;
    while ((pos = code.find("FILE", pos)) != std::string::npos) {
      const size_t at = pos;
      pos += 4;
      if (!IsWordBoundedAt(code, at, 4)) continue;
      const size_t star = SkipSpaces(code, at + 4);
      if (star < code.size() && code[star] == '*') {
        Report(at, "raw-write",
               "raw 'FILE*' handle outside util/io; use BinaryWriter or "
               "AtomicWriteTextFile");
      }
    }
  }

  // ---- rule: nondet-source ----------------------------------------------

  void CheckNondetSource(bool wallclock_scoped) {
    FlagWord("random_device", "nondet-source",
             "'std::random_device' is nondeterministic; seed a "
             "util/rng.h Rng explicitly");
    for (const char* fn : {"rand", "srand", "time", "clock",
                           "gettimeofday"}) {
      FlagCall(fn, "nondet-source",
               std::string("'") + fn +
                   "()' is a nondeterministic source; use util/rng.h for "
                   "randomness and util/timer.h for timing");
    }
    // Stdlib RNG engines: deterministic in isolation, but every seeded
    // stream in the tree must flow through util/rng.h (or the serving
    // path's request_id.h) so the reproducibility story has exactly one
    // audited entry point per domain — a stray std::mt19937 is a second
    // seed universe reviewers won't find.
    for (const char* engine :
         {"mt19937", "mt19937_64", "minstd_rand", "default_random_engine",
          "ranlux24", "ranlux48"}) {
      FlagWord(engine, "nondet-source",
               std::string("stdlib RNG engine 'std::") + engine +
                   "' bypasses the audited seed path; draw from a "
                   "util/rng.h Rng instead");
    }
    const std::string& code = file_.code;
    // Any clock's ::now().
    size_t pos = 0;
    while ((pos = code.find("::now", pos)) != std::string::npos) {
      const size_t at = pos;
      pos += 5;
      if (at + 5 < code.size() && IsWordChar(code[at + 5])) continue;
      const size_t paren = SkipSpaces(code, at + 5);
      if (paren < code.size() && code[paren] == '(') {
        Report(at, "nondet-source",
               "clock '::now()' outside util/timer.h; use WallTimer so "
               "time never feeds deterministic state");
      }
    }
    // Wall-clock reads. Scoped (not per-line) allowance: the telemetry
    // layer (src/obs/) and measurement harnesses (bench/, examples/) are
    // the audited homes of timing, so these two tokens — and only these —
    // are exempt there. Everywhere else, compute code that wants a
    // duration must route it through src/obs/ so reviewers can see that
    // time is observed, never fed back into deterministic state.
    if (!wallclock_scoped) {
      FlagWord("WallTimer", "nondet-source",
               "wall-clock 'WallTimer' read outside the telemetry layer; "
               "measure via obs::Stopwatch (src/obs/) so timing stays "
               "observation-only");
      // `steady_clock::now()` is already reported by the ::now() scan
      // above; skipping those occurrences keeps one diagnostic per site
      // (the (path, line, rule) sort is unstable for exact ties).
      size_t clock_pos = 0;
      while ((clock_pos = code.find("steady_clock", clock_pos)) !=
             std::string::npos) {
        const size_t at = clock_pos;
        clock_pos += 12;
        if (!IsWordBoundedAt(code, at, 12)) continue;
        if (code.compare(at + 12, 5, "::now") == 0) continue;
        Report(at, "nondet-source",
               "wall-clock 'steady_clock' use outside the telemetry "
               "layer; measure via obs::Stopwatch (src/obs/) so timing "
               "stays observation-only");
      }
    }
  }

  // ---- rule: naked-thread ------------------------------------------------

  void CheckNakedThread() {
    const std::string& code = file_.code;
    for (const char* token : {"std::thread", "std::jthread"}) {
      const size_t token_len = std::strlen(token);
      size_t pos = 0;
      while ((pos = code.find(token, pos)) != std::string::npos) {
        const size_t at = pos;
        pos += token_len;
        if (at + token_len < code.size() && IsWordChar(code[at + token_len])) {
          continue;
        }
        // Capacity queries are fine; only thread creation is banned.
        const size_t after = SkipSpaces(code, at + token_len);
        if (code.compare(after, 22, "::hardware_concurrency") == 0) continue;
        Report(at, "naked-thread",
               std::string("raw '") + token +
                   "' outside util/thread_pool; submit work to "
                   "GlobalThreadPool() instead");
      }
    }
    FlagWord("std::async", "naked-thread",
             "raw 'std::async' outside util/thread_pool; submit work to "
             "GlobalThreadPool() instead");
    FlagCall("pthread_create", "naked-thread",
             "raw 'pthread_create' outside util/thread_pool; submit work "
             "to GlobalThreadPool() instead");
    size_t pos = 0;
    while ((pos = code.find("#pragma", pos)) != std::string::npos) {
      const size_t at = pos;
      pos += 7;
      const size_t word = SkipSpaces(code, at + 7);
      if (code.compare(word, 3, "omp") == 0 &&
          IsWordBoundedAt(code, word, 3)) {
        Report(at, "naked-thread",
               "'#pragma omp' outside util/thread_pool; OpenMP scheduling "
               "is not deterministic — use ParallelForChunks");
      }
    }
  }

  // ---- rule: parallel-float-reduction ------------------------------------

  bool DeclaredAsFloatInFile(const std::string& name) const {
    const std::string& code = file_.code;
    for (const char* type : {"float", "double"}) {
      const size_t type_len = std::strlen(type);
      size_t pos = 0;
      while ((pos = code.find(type, pos)) != std::string::npos) {
        const size_t at = pos;
        pos += type_len;
        if (!IsWordBoundedAt(code, at, type_len)) continue;
        size_t id = SkipSpaces(code, at + type_len);
        if (code.compare(id, name.size(), name) != 0) continue;
        if (!IsWordBoundedAt(code, id, name.size())) continue;
        const size_t after = SkipSpaces(code, id + name.size());
        if (after < code.size() &&
            (code[after] == '=' || code[after] == ';' ||
             code[after] == ',' || code[after] == ')' ||
             code[after] == '{')) {
          return true;
        }
      }
    }
    return false;
  }

  // A declaration of `name` between `begin` and `limit` (any type/auto)
  // makes the accumulator chunk-local, which is fine.
  bool DeclaredLocally(const std::string& name, size_t begin,
                       size_t limit) const {
    const std::string& code = file_.code;
    size_t pos = begin;
    while ((pos = code.find(name, pos)) != std::string::npos && pos < limit) {
      const size_t at = pos;
      pos += name.size();
      if (!IsWordBoundedAt(code, at, name.size())) continue;
      const size_t prev = PrevNonSpace(code, at);
      if (prev == std::string::npos || !IsWordChar(code[prev])) continue;
      size_t type_begin = prev + 1;
      while (type_begin > begin && IsWordChar(code[type_begin - 1])) {
        --type_begin;
      }
      const std::string prev_word =
          code.substr(type_begin, prev + 1 - type_begin);
      static const std::set<std::string> kTypeWords = {
          "float", "double", "auto", "int", "long", "unsigned", "short",
          "size_t", "int32_t", "int64_t", "uint32_t", "uint64_t", "const"};
      if (kTypeWords.count(prev_word)) return true;
    }
    return false;
  }

  void CheckParallelFloatReduction() {
    const std::string& code = file_.code;
    size_t pos = 0;
    while ((pos = code.find("ParallelFor", pos)) != std::string::npos) {
      const size_t at = pos;
      pos += 11;
      if (at > 0 && IsWordChar(code[at - 1])) continue;
      if (code.compare(at + 11, 6, "Chunks") == 0) continue;  // blessed
      const size_t paren = SkipSpaces(code, at + 11);
      if (paren >= code.size() || code[paren] != '(') continue;
      const size_t close = MatchBracket(code, paren, '(', ')');
      if (close == std::string::npos) continue;
      for (size_t i = paren + 1; i + 1 < close; ++i) {
        if (code[i + 1] != '=' || (code[i] != '+' && code[i] != '-')) {
          continue;
        }
        const size_t lhs_end = PrevNonSpace(code, i);
        if (lhs_end == std::string::npos) continue;
        // Indexed or dereferenced targets are ownership-partitioned
        // writes, not shared scalar reductions.
        if (code[lhs_end] == ']' || code[lhs_end] == ')') continue;
        if (!IsWordChar(code[lhs_end])) continue;
        size_t lhs_begin = lhs_end + 1;
        while (lhs_begin > 0 && IsWordChar(code[lhs_begin - 1])) {
          --lhs_begin;
        }
        const std::string name =
            code.substr(lhs_begin, lhs_end + 1 - lhs_begin);
        if (name.empty() ||
            std::isdigit(static_cast<unsigned char>(name[0]))) {
          continue;
        }
        // Member access (x.sum / p->sum) is out of heuristic reach.
        const size_t before = PrevNonSpace(code, lhs_begin);
        if (before != std::string::npos &&
            (code[before] == '.' || code[before] == '>')) {
          continue;
        }
        if (DeclaredLocally(name, paren, i)) continue;
        if (!DeclaredAsFloatInFile(name)) continue;
        Report(i, "parallel-float-reduction",
               "floating-point accumulation into '" + name +
                   "' inside a ParallelFor body; use ParallelForChunks "
                   "with a fixed-order merge");
      }
      pos = close;
    }
  }

  // ---- rule: simd-guard ---------------------------------------------------

  // Flags every identifier that *starts* with `prefix` (word-bounded at
  // the start, any identifier continuation after), reporting the full
  // token. Prefix matching is what makes the rule future-proof: new
  // intrinsics arrive constantly, but they all share these stems.
  void FlagPrefix(const std::string& prefix, const std::string& rule,
                  const std::string& message_tail) {
    const std::string& code = file_.code;
    size_t pos = 0;
    while ((pos = code.find(prefix, pos)) != std::string::npos) {
      const size_t at = pos;
      if (at > 0 && IsWordChar(code[at - 1])) {
        pos += prefix.size();
        continue;
      }
      size_t end = at + prefix.size();
      while (end < code.size() && IsWordChar(code[end])) ++end;
      Report(at, rule,
             "raw SIMD token '" + code.substr(at, end - at) + "' " +
                 message_tail);
      pos = end;
    }
  }

  void CheckSimdGuard() {
    // x86 intrinsics (_mm*, _mm256_*, _mm512_*), x86 vector types, NEON
    // intrinsic stems, NEON vector types.
    static const char* kPrefixes[] = {
        "_mm",    "__m128",  "__m256",  "__m512",   "vld1q_",   "vst1q_",
        "vaddq_", "vsubq_",  "vmulq_",  "vmlaq_",   "vfmaq_",   "vdupq_",
        "vcvt_",  "vget_",   "float32x", "float64x"};
    for (const char* prefix : kPrefixes) {
      FlagPrefix(prefix, "simd-guard",
                 "outside the nn/simd dispatch shim; vector code lives in "
                 "src/nn/simd.h and the simd_*.cc ISA tables");
    }
  }

  // ---- rule: signal-safety ------------------------------------------------

  // Names declared as (volatile) std::sig_atomic_t or std::atomic<...> —
  // the only state a signal handler may write.
  std::set<std::string> CollectSignalSafeNames() const {
    std::set<std::string> safe;
    const std::string& code = file_.code;
    size_t pos = 0;
    while ((pos = code.find("sig_atomic_t", pos)) != std::string::npos) {
      const size_t at = pos;
      pos += 12;
      if (!IsWordBoundedAt(code, at, 12)) continue;
      const size_t id = SkipSpaces(code, at + 12);
      size_t id_end = id;
      while (id_end < code.size() && IsWordChar(code[id_end])) ++id_end;
      if (id_end > id) safe.insert(code.substr(id, id_end - id));
    }
    pos = 0;
    while ((pos = code.find("atomic<", pos)) != std::string::npos) {
      const size_t at = pos;
      pos += 7;
      if (at > 0 && IsWordChar(code[at - 1])) continue;
      size_t after = MatchAngle(code, at + 6);
      if (after == std::string::npos) continue;
      after = SkipSpaces(code, after);
      size_t id_end = after;
      while (id_end < code.size() && IsWordChar(code[id_end])) ++id_end;
      if (id_end > after) safe.insert(code.substr(after, id_end - after));
    }
    return safe;
  }

  // Function names installed as handlers: `sa_handler = NAME`,
  // `sa_sigaction = NAME`, and `signal(SIGX, NAME)`.
  std::set<std::string> CollectSignalHandlerNames() const {
    std::set<std::string> handlers;
    const std::string& code = file_.code;
    auto take_identifier = [&](size_t p) -> std::string {
      while (p < code.size() &&
             (code[p] == '&' ||
              std::isspace(static_cast<unsigned char>(code[p])))) {
        ++p;
      }
      size_t end = p;
      while (end < code.size() && IsWordChar(code[end])) ++end;
      return code.substr(p, end - p);
    };
    for (const char* field : {"sa_handler", "sa_sigaction"}) {
      const size_t field_len = std::strlen(field);
      size_t pos = 0;
      while ((pos = code.find(field, pos)) != std::string::npos) {
        const size_t at = pos;
        pos += field_len;
        if (!IsWordBoundedAt(code, at, field_len)) continue;
        const size_t eq = SkipSpaces(code, at + field_len);
        if (eq >= code.size() || code[eq] != '=') continue;
        const std::string name = take_identifier(eq + 1);
        if (!name.empty() && name != "SIG_IGN" && name != "SIG_DFL") {
          handlers.insert(name);
        }
      }
    }
    size_t pos = 0;
    while ((pos = code.find("signal", pos)) != std::string::npos) {
      const size_t at = pos;
      pos += 6;
      if (at > 0 && IsWordChar(code[at - 1])) continue;  // e.g. sigaction
      if (at + 6 < code.size() && IsWordChar(code[at + 6])) continue;
      const size_t paren = SkipSpaces(code, at + 6);
      if (paren >= code.size() || code[paren] != '(') continue;
      const size_t close = MatchBracket(code, paren, '(', ')');
      if (close == std::string::npos) continue;
      // Second argument: text after the depth-1 comma.
      int depth = 0;
      size_t comma = std::string::npos;
      for (size_t i = paren; i < close; ++i) {
        if (code[i] == '(') ++depth;
        else if (code[i] == ')') --depth;
        else if (code[i] == ',' && depth == 1) {
          comma = i;
          break;
        }
      }
      if (comma == std::string::npos) continue;
      const std::string name = take_identifier(comma + 1);
      if (!name.empty() && name != "SIG_IGN" && name != "SIG_DFL") {
        handlers.insert(name);
      }
    }
    return handlers;
  }

  void ScanHandlerBody(const std::string& handler,
                       const std::set<std::string>& safe_names, size_t begin,
                       size_t end) {
    const std::string& code = file_.code;
    // Control-flow keywords and the handful of async-signal-safe
    // operations: _exit (the POSIX-blessed immediate exit) and the
    // lock-free atomic member ops.
    static const std::set<std::string> kSkipWords = {
        "if", "else", "while", "for", "switch", "return", "sizeof",
        "static_cast", "reinterpret_cast", "const_cast", "case", "break",
        "continue", "do", "goto"};
    static const std::set<std::string> kSafeCalls = {
        "_exit",     "store",       "load",  "exchange", "fetch_add",
        "fetch_sub", "fetch_or",    "fetch_and", "test_and_set", "clear"};
    for (size_t i = begin; i < end; ++i) {
      if (!IsWordChar(code[i])) continue;
      size_t word_end = i;
      while (word_end < end && IsWordChar(code[word_end])) ++word_end;
      const std::string word = code.substr(i, word_end - i);
      const size_t at = i;
      i = word_end;
      if (kSkipWords.count(word) ||
          std::isdigit(static_cast<unsigned char>(word[0]))) {
        continue;
      }
      const size_t next = SkipSpaces(code, word_end);
      if (next < end && code[next] == '(') {
        if (kSafeCalls.count(word)) continue;
        Report(at, "signal-safety",
               "call to '" + word + "' inside signal handler '" + handler +
                   "' is async-signal-unsafe; set a volatile "
                   "std::sig_atomic_t flag and do the work in the main "
                   "loop");
        continue;
      }
      // Assignment (including compound) to anything but a sig_atomic_t /
      // atomic flag.
      size_t eq = next;
      if (eq < end && (code[eq] == '+' || code[eq] == '-' ||
                       code[eq] == '|' || code[eq] == '&')) {
        ++eq;
      }
      if (eq < end && code[eq] == '=' &&
          (eq + 1 >= code.size() || code[eq + 1] != '=')) {
        if (!safe_names.count(word)) {
          Report(at, "signal-safety",
                 "signal handler '" + handler + "' writes '" + word +
                     "', which is not a volatile std::sig_atomic_t or "
                     "std::atomic; handlers may only set such flags");
        }
      }
    }
  }

  void CheckSignalSafety() {
    const std::set<std::string> handlers = CollectSignalHandlerNames();
    if (handlers.empty()) return;
    const std::set<std::string> safe_names = CollectSignalSafeNames();
    const std::string& code = file_.code;
    for (const std::string& handler : handlers) {
      size_t pos = 0;
      while ((pos = code.find(handler, pos)) != std::string::npos) {
        const size_t at = pos;
        pos += handler.size();
        if (!IsWordBoundedAt(code, at, handler.size())) continue;
        const size_t paren = SkipSpaces(code, at + handler.size());
        if (paren >= code.size() || code[paren] != '(') continue;
        const size_t close = MatchBracket(code, paren, '(', ')');
        if (close == std::string::npos) continue;
        const size_t brace = SkipSpaces(code, close);
        if (brace >= code.size() || code[brace] != '{') continue;
        const size_t body_end = MatchBracket(code, brace, '{', '}');
        if (body_end == std::string::npos) break;
        ScanHandlerBody(handler, safe_names, brace + 1, body_end - 1);
        break;  // definitions precede registration in a TU; first wins
      }
    }
  }

  // ---- rule: lock-discipline ----------------------------------------------

  void CheckLockDiscipline() {
    // (a) Raw standard lock/cv types anywhere outside util/mutex.h.
    static const char* kRawTypes[] = {
        "std::mutex",          "std::recursive_mutex",
        "std::timed_mutex",    "std::shared_mutex",
        "std::condition_variable", "std::condition_variable_any",
        "std::unique_lock",    "std::lock_guard",
        "std::scoped_lock",    "std::shared_lock"};
    for (const char* token : kRawTypes) {
      FlagWord(token, "lock-discipline",
               std::string("raw '") + token +
                   "' outside util/mutex.h; use the annotated hignn::Mutex "
                   "/ MutexLock / CondVar shim so -Wthread-safety sees the "
                   "critical section");
    }
    // (b) Manual member lock calls (`mu.lock()`, `mu->unlock()`, ...).
    // RAII-only acquisition is the rule: a hand-rolled lock/unlock pair
    // has no syntactic scope for the analysis (or a reviewer) to check.
    static const char* kManualCalls[] = {"lock",         "unlock",
                                         "try_lock",     "try_lock_for",
                                         "try_lock_until", "Lock",
                                         "Unlock"};
    const std::string& code = file_.code;
    for (const char* fn : kManualCalls) {
      const size_t fn_len = std::strlen(fn);
      size_t pos = 0;
      while ((pos = code.find(fn, pos)) != std::string::npos) {
        const size_t at = pos;
        pos += fn_len;
        if (!IsWordBoundedAt(code, at, fn_len)) continue;
        const size_t paren = SkipSpaces(code, at + fn_len);
        if (paren >= code.size() || code[paren] != '(') continue;
        const size_t prev = PrevNonSpace(code, at);
        if (prev == std::string::npos) continue;
        const bool member_call =
            code[prev] == '.' ||
            (code[prev] == '>' && prev > 0 && code[prev - 1] == '-');
        if (!member_call) continue;
        Report(at, "lock-discipline",
               std::string("manual '") + fn +
                   "()' call; critical sections are scoped MutexLock "
                   "blocks (util/mutex.h), never hand-rolled "
                   "lock/unlock pairs");
      }
    }
    // (c) Blocking calls while a MutexLock guard is in scope. The guard's
    // scope runs from its declaration to the closing brace of the
    // enclosing block; slow work (socket syscalls, sleeps, scoring)
    // belongs outside it.
    size_t pos = 0;
    while ((pos = code.find("MutexLock", pos)) != std::string::npos) {
      const size_t at = pos;
      pos += 9;
      if (!IsWordBoundedAt(code, at, 9)) continue;
      const size_t id = SkipSpaces(code, at + 9);
      size_t id_end = id;
      while (id_end < code.size() && IsWordChar(code[id_end])) ++id_end;
      if (id_end == id) continue;  // not a declaration (cast, class def)
      const std::string guard = code.substr(id, id_end - id);
      const size_t open = SkipSpaces(code, id_end);
      if (open >= code.size() || (code[open] != '(' && code[open] != '{')) {
        continue;
      }
      const size_t close = code[open] == '('
                               ? MatchBracket(code, open, '(', ')')
                               : MatchBracket(code, open, '{', '}');
      if (close == std::string::npos) continue;
      int depth = 0;
      size_t scope_end = code.size();
      for (size_t i = close; i < code.size(); ++i) {
        if (code[i] == '{') {
          ++depth;
        } else if (code[i] == '}') {
          if (--depth < 0) {
            scope_end = i;
            break;
          }
        }
      }
      ScanGuardScope(guard, close, scope_end);
    }
  }

  void ScanGuardScope(const std::string& guard, size_t begin, size_t end) {
    const std::string& code = file_.code;
    auto report_blocking = [&](size_t at, const std::string& what) {
      Report(at, "lock-discipline",
             "blocking call '" + what + "' while MutexLock '" + guard +
                 "' is in scope; shrink the critical section — do slow "
                 "work outside the lock");
    };
    // POSIX syscalls in the hignn `::fn(` style.
    static const char* kGlobalCalls[] = {"poll",   "accept", "recv",
                                         "send",   "connect", "select"};
    for (const char* fn : kGlobalCalls) {
      const std::string token = std::string("::") + fn;
      size_t pos = begin;
      while ((pos = code.find(token, pos)) != std::string::npos &&
             pos < end) {
        const size_t at = pos;
        pos += token.size();
        if (at > 0 && (IsWordChar(code[at - 1]) || code[at - 1] == ':')) {
          continue;
        }
        if (at + token.size() < code.size() &&
            IsWordChar(code[at + token.size()])) {
          continue;
        }
        const size_t paren = SkipSpaces(code, at + token.size());
        if (paren >= code.size() || code[paren] != '(') continue;
        report_blocking(at, token);
      }
    }
    // Sleeps and the heavyweight engine forwards. CondVar Wait/WaitFor
    // are deliberately absent: releasing the lock while sleeping is the
    // whole point of a condition variable.
    static const char* kSlowCalls[] = {"sleep_for", "sleep_until", "usleep",
                                       "nanosleep", "ScoreBatch", "Enqueue"};
    for (const char* fn : kSlowCalls) {
      const size_t fn_len = std::strlen(fn);
      size_t pos = begin;
      while ((pos = code.find(fn, pos)) != std::string::npos && pos < end) {
        const size_t at = pos;
        pos += fn_len;
        if (!IsWordBoundedAt(code, at, fn_len)) continue;
        const size_t paren = SkipSpaces(code, at + fn_len);
        if (paren >= code.size() || code[paren] != '(') continue;
        report_blocking(at, fn);
      }
    }
    // Thread joins: joining while holding a lock the joined thread may
    // want is the classic self-deadlock.
    size_t pos = begin;
    while ((pos = code.find("join", pos)) != std::string::npos && pos < end) {
      const size_t at = pos;
      pos += 4;
      if (!IsWordBoundedAt(code, at, 4)) continue;
      const size_t paren = SkipSpaces(code, at + 4);
      if (paren >= code.size() || code[paren] != '(') continue;
      const size_t prev = PrevNonSpace(code, at);
      if (prev == std::string::npos) continue;
      const bool member_call =
          code[prev] == '.' ||
          (code[prev] == '>' && prev > 0 && code[prev - 1] == '-');
      if (member_call) report_blocking(at, "join");
    }
  }

  // ---- rule: guard-annotation ---------------------------------------------

  static bool ContainsWord(const std::string& text, const std::string& word) {
    size_t pos = 0;
    while ((pos = text.find(word, pos)) != std::string::npos) {
      if (IsWordBoundedAt(text, pos, word.size())) return true;
      pos += word.size();
    }
    return false;
  }

  /// Removes HIGNN_*(...) annotation macros (and bare HIGNN_* tokens) so
  /// a statement's *declaration* shape can be inspected without the
  /// annotation's parens looking like a function signature.
  static std::string StripAnnotationMacros(const std::string& stmt) {
    std::string out;
    size_t i = 0;
    while (i < stmt.size()) {
      if (stmt.compare(i, 6, "HIGNN_") == 0 &&
          (i == 0 || !IsWordChar(stmt[i - 1]))) {
        size_t end = i + 6;
        while (end < stmt.size() && IsWordChar(stmt[end])) ++end;
        const size_t paren = SkipSpaces(stmt, end);
        if (paren < stmt.size() && stmt[paren] == '(') {
          const size_t close = MatchBracket(stmt, paren, '(', ')');
          if (close != std::string::npos) {
            i = close;
            continue;
          }
        }
        i = end;
        continue;
      }
      out += stmt[i++];
    }
    return out;
  }

  /// Removes template argument lists (std::vector<int> x -> std::vector x)
  /// so parens inside template arguments (std::function<void()>) don't
  /// make a field look like a method declaration.
  static std::string StripTemplateArgs(const std::string& stmt) {
    std::string out;
    size_t i = 0;
    while (i < stmt.size()) {
      if (stmt[i] == '<' && i > 0 && IsWordChar(stmt[i - 1])) {
        const size_t close = MatchAngle(stmt, i);
        if (close != std::string::npos) {
          i = close;
          continue;
        }
      }
      out += stmt[i++];
    }
    return out;
  }

  void CheckGuardAnnotation() {
    const std::string& code = file_.code;
    for (const char* keyword : {"class", "struct"}) {
      const size_t kw_len = std::strlen(keyword);
      size_t pos = 0;
      while ((pos = code.find(keyword, pos)) != std::string::npos) {
        const size_t at = pos;
        pos += kw_len;
        if (!IsWordBoundedAt(code, at, kw_len)) continue;
        // `enum class` is an enumeration, not a record.
        const size_t prev = PrevNonSpace(code, at);
        if (prev != std::string::npos && IsWordChar(code[prev])) {
          size_t w_begin = prev + 1;
          while (w_begin > 0 && IsWordChar(code[w_begin - 1])) --w_begin;
          if (code.compare(w_begin, prev + 1 - w_begin, "enum") == 0 &&
              prev + 1 - w_begin == 4) {
            continue;
          }
        }
        // Name: step over attribute macros (HIGNN_CAPABILITY(...)) and
        // `final`; the first plain identifier wins.
        size_t p = SkipSpaces(code, at + kw_len);
        std::string name;
        while (p < code.size()) {
          size_t w_end = p;
          while (w_end < code.size() && IsWordChar(code[w_end])) ++w_end;
          if (w_end == p) break;
          const std::string word = code.substr(p, w_end - p);
          const size_t after = SkipSpaces(code, w_end);
          if (after < code.size() && code[after] == '(') {
            const size_t close = MatchBracket(code, after, '(', ')');
            if (close == std::string::npos) break;
            p = SkipSpaces(code, close);
            continue;
          }
          if (word == "final") {
            p = after;
            continue;
          }
          name = word;
          p = after;
          break;
        }
        if (name.empty()) continue;
        // Body '{' (base-clause template args tolerated); ';' first means
        // a forward declaration, '(' or ')' means this was a type mention
        // inside an expression or parameter list.
        size_t q = p;
        int angle = 0;
        size_t body = std::string::npos;
        while (q < code.size()) {
          const char c = code[q];
          if (c == '<') {
            ++angle;
          } else if (c == '>' && (q == 0 || code[q - 1] != '-')) {
            --angle;
          } else if (angle <= 0 &&
                     (c == ';' || c == '(' || c == ')' || c == '=')) {
            break;
          } else if (angle <= 0 && c == '{') {
            body = q;
            break;
          }
          ++q;
        }
        if (body == std::string::npos) continue;
        const size_t body_end = MatchBracket(code, body, '{', '}');
        if (body_end == std::string::npos) continue;
        AnalyzeClassBody(name, body + 1, body_end - 1);
      }
    }
  }

  struct Field {
    std::string name;
    size_t pos;
  };

  void AnalyzeClassBody(const std::string& class_name, size_t begin,
                        size_t end) {
    const std::string& code = file_.code;
    std::vector<Field> unguarded;
    bool has_mutex = false;
    size_t stmt_begin = begin;
    size_t i = begin;
    while (i < end) {
      const char c = code[i];
      if (c == '(' || c == '[') {
        const size_t close =
            MatchBracket(code, i, c, c == '(' ? ')' : ']');
        if (close == std::string::npos || close > end) break;
        i = close;
        continue;
      }
      if (c == '{') {
        const size_t close = MatchBracket(code, i, '{', '}');
        if (close == std::string::npos || close > end) break;
        const size_t next = SkipSpaces(code, close);
        if (next < end && code[next] == ';') {
          // Brace initializer / nested type: stays part of the statement
          // (the nested type is independently found by the keyword scan).
          i = close;
          continue;
        }
        // Method or constructor body — discard the pending declaration.
        stmt_begin = close;
        i = close;
        continue;
      }
      if (c == ':') {
        if ((i + 1 < end && code[i + 1] == ':') ||
            (i > begin && code[i - 1] == ':')) {
          ++i;  // '::' qualifier, not a statement boundary
          continue;
        }
        // Access specifier or constructor initializer list: both end
        // whatever declaration text came before.
        ProcessFieldStatement(class_name, stmt_begin, i, &has_mutex,
                              &unguarded);
        stmt_begin = i + 1;
        ++i;
        continue;
      }
      if (c == ';') {
        ProcessFieldStatement(class_name, stmt_begin, i, &has_mutex,
                              &unguarded);
        stmt_begin = i + 1;
        ++i;
        continue;
      }
      ++i;
    }
    if (!has_mutex) return;
    for (const Field& f : unguarded) {
      Report(f.pos, "guard-annotation",
             "field '" + f.name + "' in mutex-holding class '" + class_name +
                 "' lacks HIGNN_GUARDED_BY(...); name its lock, or make "
                 "the field const/atomic, or allow with a justification");
    }
  }

  void ProcessFieldStatement(const std::string& class_name, size_t begin,
                             size_t end, bool* has_mutex,
                             std::vector<Field>* unguarded) {
    (void)class_name;
    const std::string& code = file_.code;
    const size_t first = SkipSpaces(code, begin);
    if (first >= end) return;
    const std::string stmt = code.substr(first, end - first);
    size_t w_end = 0;
    while (w_end < stmt.size() && IsWordChar(stmt[w_end])) ++w_end;
    if (w_end == 0) return;
    const std::string first_word = stmt.substr(0, w_end);
    // Non-field statements: access specifiers, aliases, friends, methods
    // by keyword, static storage (class-level state has its own story).
    static const std::set<std::string> kSkipLead = {
        "public",   "private", "protected", "using",    "typedef",
        "friend",   "template", "static",   "enum",     "class",
        "struct",   "operator", "explicit", "virtual",  "inline",
        "return",   "if",       "while",    "for",      "switch",
        "case",     "default",  "else",     "do",       "break",
        "continue", "goto",     "extern"};
    if (kSkipLead.count(first_word)) return;
    const bool annotated =
        stmt.find("HIGNN_GUARDED_BY") != std::string::npos ||
        stmt.find("HIGNN_PT_GUARDED_BY") != std::string::npos;
    const std::string no_macros = StripAnnotationMacros(stmt);
    // The lock itself.
    if (ContainsWord(no_macros, "Mutex") ||
        no_macros.find("std::mutex") != std::string::npos ||
        no_macros.find("std::shared_mutex") != std::string::npos ||
        no_macros.find("std::recursive_mutex") != std::string::npos) {
      *has_mutex = true;
      return;
    }
    if (annotated) return;
    // Exempt categories: immutable, inherently atomic, thread handles,
    // and the condition variables that pair with the mutex.
    static const char* kExemptWords[] = {"const",   "constexpr", "CondVar",
                                         "atomic",  "thread",    "jthread",
                                         "once_flag", "sig_atomic_t"};
    for (const char* word : kExemptWords) {
      if (ContainsWord(no_macros, word)) return;
    }
    const std::string flat = StripTemplateArgs(no_macros);
    if (flat.find('(') != std::string::npos) return;  // method declaration
    size_t cut = flat.find_first_of("={");
    std::string decl = cut == std::string::npos ? flat : flat.substr(0, cut);
    // Trailing array extents: `int histo[8];` declares histo, not 8.
    size_t tail = decl.find_last_not_of(" \t\n");
    while (tail != std::string::npos && decl[tail] == ']') {
      const size_t open = decl.rfind('[', tail);
      if (open == std::string::npos) break;
      decl = decl.substr(0, open);
      tail = decl.find_last_not_of(" \t\n");
    }
    const std::string field = TrailingIdentifier(decl);
    if (field.empty() ||
        std::isdigit(static_cast<unsigned char>(field[0]))) {
      return;
    }
    // A lone identifier is not a declaration (e.g. a stray expression).
    const std::string head = decl.substr(0, decl.size() - field.size());
    bool head_has_type = false;
    for (char hc : head) {
      if (IsWordChar(hc)) {
        head_has_type = true;
        break;
      }
    }
    if (!head_has_type) return;
    unguarded->push_back({field, first});
  }

  // ---- rule: unchecked-status ---------------------------------------------

  void CheckUncheckedStatus(const SymbolTable& symbols) {
    const std::string& code = file_.code;
    for (const auto& [name, cat] : symbols.status_fns) {
      if (cat == ReturnCat::kVoid) continue;
      size_t pos = 0;
      while ((pos = code.find(name, pos)) != std::string::npos) {
        const size_t at = pos;
        pos += name.size();
        if (!IsWordBoundedAt(code, at, name.size())) continue;
        const size_t paren = SkipSpaces(code, at + name.size());
        if (paren >= code.size() || code[paren] != '(') continue;
        const size_t close = MatchBracket(code, paren, '(', ')');
        if (close == std::string::npos) continue;
        // Discarded only when the statement is exactly the call: the
        // character after the argument list must be ';' ...
        const size_t next = SkipSpaces(code, close);
        if (next >= code.size() || code[next] != ';') continue;
        // ... and walking left over the object/qualifier chain
        // (obj.SaveX / ns::SaveX / p->SaveX) must reach a statement
        // boundary. Anything else — an '=', a 'return', a wrapping call,
        // a (void) cast, an expression-produced object — consumes or
        // deliberately discards the value, so we stay quiet.
        size_t chain_begin = at;
        bool consumed = false;
        while (true) {
          const size_t prev = PrevNonSpace(code, chain_begin);
          if (prev == std::string::npos) break;  // file start
          const char c = code[prev];
          size_t sep_begin;
          if (c == '.') {
            sep_begin = prev;
          } else if (c == ':' && prev > 0 && code[prev - 1] == ':') {
            sep_begin = prev - 1;
          } else if (c == '>' && prev > 0 && code[prev - 1] == '-') {
            sep_begin = prev - 1;
          } else if (c == ';' || c == '{' || c == '}') {
            break;  // statement starts with the call: result discarded
          } else {
            consumed = true;  // declaration, assignment, cast, wrap, ...
            break;
          }
          const size_t id_last = PrevNonSpace(code, sep_begin);
          if (id_last == std::string::npos || !IsWordChar(code[id_last])) {
            consumed = true;  // expression-produced object: conservative
            break;
          }
          size_t id_begin = id_last + 1;
          while (id_begin > 0 && IsWordChar(code[id_begin - 1])) --id_begin;
          chain_begin = id_begin;
        }
        if (consumed) continue;
        Report(at, "unchecked-status",
               "result of '" + name + "' (" +
                   ReturnCatName(cat) +
                   ") is discarded; propagate it, or spell a deliberate "
                   "best-effort write as (void)" +
                   name + "(...) under an allow");
      }
    }
  }

  // ---- shared matchers ---------------------------------------------------

  // A preceding word character means we matched inside a longer
  // identifier (`srand` for `rand`, `basic_ofstream` for `ofstream`); a
  // preceding ':' is a namespace qualifier (`std::rand`) and still counts.
  void FlagWord(const std::string& token, const std::string& rule,
                const std::string& message) {
    const std::string& code = file_.code;
    size_t pos = 0;
    while ((pos = code.find(token, pos)) != std::string::npos) {
      const size_t at = pos;
      pos += token.size();
      if (at > 0 && IsWordChar(code[at - 1])) continue;
      if (at + token.size() < code.size() &&
          IsWordChar(code[at + token.size()])) {
        continue;
      }
      Report(at, rule, message);
    }
  }

  // Matches only the global-scope-qualified call form `::fn(` (the hignn
  // style for POSIX syscalls), so member functions and namespace-qualified
  // names (`writer.send(...)`, `std::write(...)`) never fire.
  void FlagGlobalCall(const std::string& fn, const std::string& rule,
                      const std::string& message) {
    const std::string token = "::" + fn;
    const std::string& code = file_.code;
    size_t pos = 0;
    while ((pos = code.find(token, pos)) != std::string::npos) {
      const size_t at = pos;
      pos += token.size();
      if (at > 0 && (IsWordChar(code[at - 1]) || code[at - 1] == ':')) {
        continue;  // qualified name (std::write), not global scope
      }
      if (at + token.size() < code.size() &&
          IsWordChar(code[at + token.size()])) {
        continue;
      }
      const size_t paren = SkipSpaces(code, at + token.size());
      if (paren >= code.size() || code[paren] != '(') continue;
      Report(at, rule, message);
    }
  }

  void FlagCall(const std::string& fn, const std::string& rule,
                const std::string& message) {
    const std::string& code = file_.code;
    size_t pos = 0;
    while ((pos = code.find(fn, pos)) != std::string::npos) {
      const size_t at = pos;
      pos += fn.size();
      if (at > 0 && IsWordChar(code[at - 1])) continue;
      if (at + fn.size() < code.size() && IsWordChar(code[at + fn.size()])) {
        continue;
      }
      const size_t paren = SkipSpaces(code, at + fn.size());
      if (paren >= code.size() || code[paren] != '(') continue;
      Report(at, rule, message);
    }
  }

  std::string path_;
  StrippedFile file_;
  std::set<std::string> direct_;
  std::set<std::string> element_;
  std::vector<Diagnostic> diagnostics_;
  std::map<std::string, int> allow_counts_;
};

bool HasSourceExtension(const fs::path& path) {
  static const std::set<std::string> kExts = {".cc", ".cpp", ".cxx", ".h",
                                              ".hpp", ".hh", ".ipp"};
  return kExts.count(path.extension().string()) > 0;
}

// Minimal extraction of "file" entries from a compile_commands.json — the
// values are plain absolute paths, so a quoted-string scan suffices.
std::vector<std::string> FilesFromCompileCommands(const std::string& path) {
  std::vector<std::string> files;
  std::ifstream in(path);
  if (!in) return files;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  size_t pos = 0;
  while ((pos = json.find("\"file\"", pos)) != std::string::npos) {
    pos += 6;
    const size_t colon = json.find(':', pos);
    if (colon == std::string::npos) break;
    const size_t open = json.find('"', colon);
    if (open == std::string::npos) break;
    const size_t close = json.find('"', open + 1);
    if (close == std::string::npos) break;
    files.push_back(json.substr(open + 1, close - open - 1));
    pos = close + 1;
  }
  return files;
}

std::string NormalizeDisplay(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  if (!ec && !rel.empty() && rel.native().rfind("..", 0) != 0) {
    return rel.generic_string();
  }
  return path.generic_string();
}

bool RuleAllowsPath(const RuleInfo& rule, const std::string& display_path) {
  for (const std::string& suffix : rule.allowed_paths) {
    if (display_path.size() >= suffix.size() &&
        display_path.compare(display_path.size() - suffix.size(),
                             suffix.size(), suffix) == 0) {
      return true;
    }
  }
  return false;
}

bool RuleScopesPath(const RuleInfo& rule, const std::string& display_path) {
  for (const std::string& prefix : rule.scoped_dirs) {
    if (display_path.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: hignn_lint [--root DIR] [--compile-commands FILE] "
      "[--list-rules] [--allow-report] [paths...]\n"
      "  Scans the given files/directories (or the compile_commands.json\n"
      "  file list) for violations of the hignn invariant catalog\n"
      "  (DESIGN.md §9). Paths are resolved relative to --root.\n"
      "  --allow-report prints a JSON inventory of every\n"
      "  `hignn-lint: allow(...)` annotation instead of linting.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string compile_commands;
  std::vector<std::string> inputs;
  bool allow_report = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = fs::path(argv[++i]);
    } else if (arg == "--compile-commands" && i + 1 < argc) {
      compile_commands = argv[++i];
    } else if (arg == "--allow-report") {
      allow_report = true;
    } else if (arg == "--list-rules") {
      for (const RuleInfo& rule : Rules()) {
        std::printf("%s: %s\n", rule.id, rule.summary);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty() && compile_commands.empty()) return Usage();

  std::set<std::string> file_set;
  auto add_path = [&](const fs::path& p) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && HasSourceExtension(it->path())) {
          file_set.insert(it->path().lexically_normal().string());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      file_set.insert(p.lexically_normal().string());
    } else {
      std::fprintf(stderr, "hignn_lint: no such path: %s\n",
                   p.string().c_str());
    }
  };
  for (const std::string& input : inputs) {
    const fs::path p(input);
    add_path(p.is_absolute() ? p : root / p);
  }
  if (!compile_commands.empty()) {
    for (const std::string& file : FilesFromCompileCommands(compile_commands)) {
      const fs::path p(file);
      std::error_code ec;
      if (fs::is_regular_file(p, ec)) {
        file_set.insert(p.lexically_normal().string());
      }
    }
  }
  if (file_set.empty()) {
    std::fprintf(stderr, "hignn_lint: nothing to scan\n");
    return 2;
  }

  // Pass 1: read and strip every file once, building the cross-file
  // symbol table the per-file rules consult in pass 2.
  std::vector<FileLinter> linters;
  SymbolTable symbols;
  for (const std::string& file : file_set) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "hignn_lint: cannot read %s\n", file.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    linters.emplace_back(NormalizeDisplay(fs::path(file), root),
                         buffer.str());
    linters.back().CollectSymbols(&symbols);
  }

  if (allow_report) {
    std::vector<FileLinter::AllowAnnotation> allows;
    for (const FileLinter& linter : linters) {
      linter.CollectAllowAnnotations(&allows);
    }
    // Only inventory real rules: documentation that *describes* the allow
    // syntax (`allow(<rule>)`) is not a suppression.
    std::set<std::string> rule_ids;
    for (const RuleInfo& rule : Rules()) rule_ids.insert(rule.id);
    allows.erase(std::remove_if(allows.begin(), allows.end(),
                                [&](const FileLinter::AllowAnnotation& a) {
                                  return rule_ids.count(a.rule) == 0;
                                }),
                 allows.end());
    std::sort(allows.begin(), allows.end(),
              [](const FileLinter::AllowAnnotation& a,
                 const FileLinter::AllowAnnotation& b) {
                if (a.file != b.file) return a.file < b.file;
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
    std::printf("{\n  \"allows\": [");
    for (size_t i = 0; i < allows.size(); ++i) {
      const FileLinter::AllowAnnotation& a = allows[i];
      std::printf(
          "%s\n    {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, "
          "\"justification\": \"%s\"}",
          i == 0 ? "" : ",", JsonEscape(a.rule).c_str(),
          JsonEscape(a.file).c_str(), a.line,
          JsonEscape(a.justification).c_str());
    }
    std::printf("%s],\n  \"total\": %zu\n}\n",
                allows.empty() ? "" : "\n  ", allows.size());
    return 0;
  }

  // Pass 2: run the rule set per file against the merged table.
  std::vector<Diagnostic> diagnostics;
  std::map<std::string, int> allow_totals;
  size_t files_scanned = 0;
  for (FileLinter& linter : linters) {
    std::set<std::string> active;
    std::set<std::string> scoped;
    for (const RuleInfo& rule : Rules()) {
      if (!RuleAllowsPath(rule, linter.path())) active.insert(rule.id);
      if (RuleScopesPath(rule, linter.path())) scoped.insert(rule.id);
    }
    linter.Run(active, scoped, symbols);
    diagnostics.insert(diagnostics.end(), linter.diagnostics().begin(),
                       linter.diagnostics().end());
    for (const auto& [rule, count] : linter.allow_counts()) {
      allow_totals[rule] += count;
    }
    ++files_scanned;
  }

  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  for (const Diagnostic& d : diagnostics) {
    std::printf("%s:%d: [%s] %s\n", d.path.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }

  int allow_total = 0;
  std::string allow_breakdown;
  for (const auto& [rule, count] : allow_totals) {
    allow_total += count;
    allow_breakdown += " " + rule + "=" + std::to_string(count);
  }
  if (allow_total > 0) {
    std::printf("allowed:%s (%d total)\n", allow_breakdown.c_str(),
                allow_total);
  } else {
    std::printf("allowed: none\n");
  }
  std::printf("checked %zu files: %zu violation(s)\n", files_scanned,
              diagnostics.size());
  return diagnostics.empty() ? 0 : 1;
}
