// hignn — command-line interface to the HiGNN library.
//
// Works on plain TSV edge lists (left_id \t right_id [\t weight]), so the
// pipeline can run on real data without writing any C++:
//
//   hignn gen-data  --preset taobao1 --out /tmp/clicks.tsv
//   hignn fit       --graph /tmp/clicks.tsv --levels 3 --dim 32
//                   --steps 300 --out /tmp/model.hgnn
//   hignn info      --model /tmp/model.hgnn
//   hignn embed     --model /tmp/model.hgnn --side left --out /tmp/u.tsv
//   hignn clusters  --model /tmp/model.hgnn --side right --level 2
//                   --out /tmp/item_communities.tsv
//
// When no vertex features are supplied, `fit` derives simple structural
// features (log degree, log weighted degree, bias) — enough for the GNN
// to bootstrap from pure graph structure.

#include <cstdio>
#include <sstream>
#include <string>

#include "core/checkpoint.h"
#include "core/hignn.h"
#include "core/serialization.h"
#include "core/training_monitor.h"
#include "data/synthetic.h"
#include "predict/cvr_model.h"
#include "predict/features.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/embedding_store.h"
#include "util/flags.h"
#include "util/io.h"
#include "util/string_util.h"

namespace hignn {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr, R"(usage: hignn <command> [flags]

commands:
  gen-data   generate a synthetic click log
             --preset taobao1|taobao2|tiny  --users N --items N
             --seed S  --out FILE.tsv
  fit        fit a HiGNN hierarchy on a TSV edge list
             --graph FILE.tsv  --out MODEL.hgnn
             [--levels 3] [--dim 32] [--alpha 5] [--steps 200]
             [--batch 256] [--lr 0.003] [--ch] [--seed S] [--verbose]
             [--threads N]  (0 = all cores, 1 = single-threaded;
                             results are identical for any N)
             [--checkpoint-dir DIR]  (save training state per level)
             [--checkpoint-every N]  (also every N SAGE steps; 0 = off)
             [--checkpoint-keep K]   (retain newest K checkpoints; 3)
             [--resume]              (continue from DIR's latest
                                      checkpoint; bitwise-identical to
                                      an uninterrupted run)
  info       print a model summary            --model MODEL.hgnn
  embed      dump hierarchical embeddings     --model MODEL.hgnn
             --side left|right  --out FILE.tsv  [--levels K]
  clusters   dump cluster assignments         --model MODEL.hgnn
             --side left|right  --level L  --out FILE.tsv
  export-store
             train the full pipeline on a synthetic preset and export
             the online serving store (embeddings + cluster chains +
             CVR weights; see src/serve/embedding_store.h)
             --out STORE.hgnnstore
             [--preset tiny] [--users N] [--items N] [--seed S]
             [--levels 2] [--dim 16] [--steps 120] [--threads N]
             [--cvr-epochs 2]
             [--no-index]  (write the legacy v1 layout without the
                            cluster-tree retrieval index; servers then
                            rebuild the identical index on load)

telemetry (any command):
  [--metrics-out FILE.json]  dump the metrics registry on success
  [--trace-out FILE.json]    dump Chrome trace_event spans on success
                             (open in chrome://tracing)
  [--obs-off]                disable telemetry collection entirely;
                             results are bitwise identical either way
)");
  return 2;
}

// Telemetry is observation-only: the switch below and the dumps after a
// successful command never change what the command computes.
void ApplyObsFlags(const CommandLine& cl) {
  if (cl.GetBool("obs-off")) obs::SetEnabled(false);
}

int DumpObsArtifacts(const CommandLine& cl) {
  const std::string metrics_out = cl.GetString("metrics-out");
  if (!metrics_out.empty()) {
    if (Status status =
            obs::MetricsRegistry::Global().DumpJsonToFile(metrics_out);
        !status.ok()) {
      return Fail(status);
    }
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  const std::string trace_out = cl.GetString("trace-out");
  if (!trace_out.empty()) {
    if (Status status = obs::WriteTraceJson(trace_out); !status.ok()) {
      return Fail(status);
    }
    std::printf("wrote trace to %s\n", trace_out.c_str());
  }
  return 0;
}

// Structural fallback features: [log(1+degree), log(1+weighted degree), 1].
Matrix StructuralFeatures(const BipartiteGraph& graph, bool left) {
  const int32_t n = left ? graph.num_left() : graph.num_right();
  Matrix features(static_cast<size_t>(n), 3);
  for (int32_t v = 0; v < n; ++v) {
    const double degree = left ? graph.LeftDegree(v) : graph.RightDegree(v);
    const double weighted =
        left ? graph.LeftWeightedDegree(v) : graph.RightWeightedDegree(v);
    features(static_cast<size_t>(v), 0) =
        static_cast<float>(std::log1p(degree));
    features(static_cast<size_t>(v), 1) =
        static_cast<float>(std::log1p(weighted));
    features(static_cast<size_t>(v), 2) = 1.0f;
  }
  return features;
}

int RunGenData(const CommandLine& cl) {
  const std::string out = cl.GetString("out");
  if (out.empty()) return Usage();
  const std::string preset = cl.GetString("preset", "tiny");
  SyntheticConfig config;
  if (preset == "taobao1") {
    config = SyntheticConfig::Taobao1();
  } else if (preset == "taobao2") {
    config = SyntheticConfig::Taobao2();
  } else if (preset == "tiny") {
    config = SyntheticConfig::Tiny();
  } else {
    std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
    return 2;
  }
  auto users = cl.GetInt("users", config.num_users);
  auto items = cl.GetInt("items", config.num_items);
  auto seed = cl.GetInt("seed", static_cast<int64_t>(config.seed));
  if (!users.ok()) return Fail(users.status());
  if (!items.ok()) return Fail(items.status());
  if (!seed.ok()) return Fail(seed.status());
  config.num_users = static_cast<int32_t>(users.value());
  config.num_items = static_cast<int32_t>(items.value());
  config.seed = static_cast<uint64_t>(seed.value());

  auto dataset = SyntheticDataset::Generate(config);
  if (!dataset.ok()) return Fail(dataset.status());
  const BipartiteGraph graph = dataset.value().BuildTrainGraph();
  if (Status status = SaveBipartiteGraphTsv(graph, out); !status.ok()) {
    return Fail(status);
  }
  std::printf("wrote %s: %d users x %d items, %lld edges (density %.2e)\n",
              out.c_str(), graph.num_left(), graph.num_right(),
              static_cast<long long>(graph.num_edges()), graph.Density());
  return 0;
}

int RunFit(const CommandLine& cl) {
  const std::string graph_path = cl.GetString("graph");
  const std::string out = cl.GetString("out");
  if (graph_path.empty() || out.empty()) return Usage();

  auto graph = EndsWith(graph_path, ".tsv")
                   ? LoadBipartiteGraphTsv(graph_path)
                   : LoadBipartiteGraph(graph_path);
  if (!graph.ok()) return Fail(graph.status());

  HignnConfig config;
  auto levels = cl.GetInt("levels", 3);
  auto dim = cl.GetInt("dim", 32);
  auto alpha = cl.GetDouble("alpha", 5.0);
  auto steps = cl.GetInt("steps", 200);
  auto batch = cl.GetInt("batch", 256);
  auto lr = cl.GetDouble("lr", 3e-3);
  auto seed = cl.GetInt("seed", 1234);
  auto threads = cl.GetInt("threads", 0);
  auto ckpt_every = cl.GetInt("checkpoint-every", 0);
  auto ckpt_keep = cl.GetInt("checkpoint-keep", 3);
  for (const Status& status :
       {levels.status(), dim.status(), alpha.status(), steps.status(),
        batch.status(), lr.status(), seed.status(), threads.status(),
        ckpt_every.status(), ckpt_keep.status()}) {
    if (!status.ok()) return Fail(status);
  }
  config.levels = static_cast<int32_t>(levels.value());
  config.sage.dims = {static_cast<int32_t>(dim.value()),
                      static_cast<int32_t>(dim.value())};
  config.alpha = alpha.value();
  config.sage.train_steps = static_cast<int32_t>(steps.value());
  config.sage.batch_size = static_cast<int32_t>(batch.value());
  config.sage.learning_rate = static_cast<float>(lr.value());
  config.select_k_by_ch = cl.GetBool("ch");
  config.verbose = cl.GetBool("verbose");
  config.seed = static_cast<uint64_t>(seed.value());
  config.num_threads = static_cast<int32_t>(threads.value());

  CheckpointOptions ckpt;
  ckpt.dir = cl.GetString("checkpoint-dir");
  ckpt.step_interval = static_cast<int32_t>(ckpt_every.value());
  ckpt.keep_last = static_cast<int32_t>(ckpt_keep.value());
  ckpt.resume = cl.GetBool("resume");
  if (ckpt.resume && ckpt.dir.empty()) {
    return Fail(Status::InvalidArgument("--resume needs --checkpoint-dir"));
  }

  const Matrix left_features = StructuralFeatures(graph.value(), true);
  const Matrix right_features = StructuralFeatures(graph.value(), false);

  obs::Stopwatch timer;
  auto model = Hignn::Fit(graph.value(), left_features, right_features,
                          config, ckpt, TrainingMonitorConfig());
  if (!model.ok()) return Fail(model.status());
  if (Status status = SaveHignnModel(model.value(), out); !status.ok()) {
    return Fail(status);
  }
  std::printf("fitted %d levels in %.1fs; saved to %s\n",
              model.value().num_levels(), timer.Seconds(), out.c_str());
  return 0;
}

Result<HignnModel> LoadModelFlag(const CommandLine& cl) {
  const std::string path = cl.GetString("model");
  if (path.empty()) return Status::InvalidArgument("--model is required");
  return LoadHignnModel(path);
}

int RunInfo(const CommandLine& cl) {
  auto model = LoadModelFlag(cl);
  if (!model.ok()) return Fail(model.status());
  std::printf("HiGNN model: %d levels, d = %d (hierarchical dim %d)\n",
              model.value().num_levels(), model.value().level_dim(),
              model.value().hierarchical_dim());
  for (int32_t l = 0; l < model.value().num_levels(); ++l) {
    const HignnLevel& level =
        model.value().levels()[static_cast<size_t>(l)];
    std::printf(
        "  level %d: graph %d x %d (%lld edges, density %.2e), "
        "clusters %d x %d, sage tail loss %.4f\n",
        l + 1, level.graph.num_left(), level.graph.num_right(),
        static_cast<long long>(level.graph.num_edges()),
        level.graph.Density(), level.num_left_clusters,
        level.num_right_clusters, level.train_loss);
  }
  return 0;
}

int RunEmbed(const CommandLine& cl) {
  auto model = LoadModelFlag(cl);
  if (!model.ok()) return Fail(model.status());
  const std::string out = cl.GetString("out");
  const std::string side = cl.GetString("side", "left");
  if (out.empty() || (side != "left" && side != "right")) return Usage();
  auto max_levels = cl.GetInt("levels", 0);
  if (!max_levels.ok()) return Fail(max_levels.status());

  const Matrix embeddings =
      side == "left"
          ? model.value().AllHierarchicalLeft(
                static_cast<int32_t>(max_levels.value()))
          : model.value().AllHierarchicalRight(
                static_cast<int32_t>(max_levels.value()));
  std::ostringstream stream;
  for (size_t r = 0; r < embeddings.rows(); ++r) {
    stream << r;
    for (size_t c = 0; c < embeddings.cols(); ++c) {
      stream << '\t' << embeddings(r, c);
    }
    stream << '\n';
  }
  if (Status status = AtomicWriteTextFile(out, stream.str()); !status.ok()) {
    return Fail(status);
  }
  std::printf("wrote %zu x %zu embeddings to %s\n", embeddings.rows(),
              embeddings.cols(), out.c_str());
  return 0;
}

int RunClusters(const CommandLine& cl) {
  auto model = LoadModelFlag(cl);
  if (!model.ok()) return Fail(model.status());
  const std::string out = cl.GetString("out");
  const std::string side = cl.GetString("side", "left");
  auto level = cl.GetInt("level", 1);
  if (!level.ok()) return Fail(level.status());
  if (out.empty() || (side != "left" && side != "right")) return Usage();
  if (level.value() < 1 || level.value() > model.value().num_levels()) {
    return Fail(Status::InvalidArgument("--level out of range"));
  }

  const int32_t n = side == "left"
                        ? model.value().levels().front().graph.num_left()
                        : model.value().levels().front().graph.num_right();
  std::ostringstream stream;
  for (int32_t v = 0; v < n; ++v) {
    const int32_t cluster =
        side == "left"
            ? model.value().LeftClusterAt(
                  v, static_cast<int32_t>(level.value()))
            : model.value().RightClusterAt(
                  v, static_cast<int32_t>(level.value()));
    stream << v << '\t' << cluster << '\n';
  }
  if (Status status = AtomicWriteTextFile(out, stream.str()); !status.ok()) {
    return Fail(status);
  }
  std::printf("wrote %d assignments (level %lld, %s side) to %s\n", n,
              static_cast<long long>(level.value()), side.c_str(),
              out.c_str());
  return 0;
}

// Full offline pipeline in one verb: synthesize the dataset, fit the
// hierarchy, train the CVR network, and hand everything to the serving
// layer as one immutable store file. Deterministic for a given flag set,
// so a store can always be rebuilt bit-for-bit from its provenance line.
int RunExportStore(const CommandLine& cl) {
  const std::string out = cl.GetString("out");
  if (out.empty()) return Usage();
  const std::string preset = cl.GetString("preset", "tiny");
  SyntheticConfig data_config;
  if (preset == "taobao1") {
    data_config = SyntheticConfig::Taobao1();
  } else if (preset == "taobao2") {
    data_config = SyntheticConfig::Taobao2();
  } else if (preset == "tiny") {
    data_config = SyntheticConfig::Tiny();
  } else {
    std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
    return 2;
  }
  auto users = cl.GetInt("users", data_config.num_users);
  auto items = cl.GetInt("items", data_config.num_items);
  auto seed = cl.GetInt("seed", static_cast<int64_t>(data_config.seed));
  auto levels = cl.GetInt("levels", 2);
  auto dim = cl.GetInt("dim", 16);
  auto steps = cl.GetInt("steps", 120);
  auto threads = cl.GetInt("threads", 0);
  auto cvr_epochs = cl.GetInt("cvr-epochs", 2);
  for (const Status& status :
       {users.status(), items.status(), seed.status(), levels.status(),
        dim.status(), steps.status(), threads.status(),
        cvr_epochs.status()}) {
    if (!status.ok()) return Fail(status);
  }
  data_config.num_users = static_cast<int32_t>(users.value());
  data_config.num_items = static_cast<int32_t>(items.value());
  data_config.seed = static_cast<uint64_t>(seed.value());

  obs::Stopwatch timer;
  auto dataset = SyntheticDataset::Generate(data_config);
  if (!dataset.ok()) return Fail(dataset.status());

  HignnConfig hignn_config;
  hignn_config.levels = static_cast<int32_t>(levels.value());
  hignn_config.sage.dims = {static_cast<int32_t>(dim.value()),
                            static_cast<int32_t>(dim.value())};
  hignn_config.sage.train_steps = static_cast<int32_t>(steps.value());
  hignn_config.min_clusters = 2;
  hignn_config.num_threads = static_cast<int32_t>(threads.value());
  hignn_config.seed = data_config.seed;
  const BipartiteGraph graph = dataset.value().BuildTrainGraph();
  auto model = Hignn::Fit(graph, dataset.value().user_features(),
                          dataset.value().item_features(), hignn_config);
  if (!model.ok()) return Fail(model.status());

  const FeatureSpec spec = FeatureSpec::HiGnn(model.value().num_levels());
  auto builder =
      CvrFeatureBuilder::Create(&dataset.value(), &model.value(), spec);
  if (!builder.ok()) return Fail(builder.status());
  const SampleSet samples =
      BuildSamples(dataset.value(), /*replicate_positives=*/true,
                   data_config.seed);
  CvrModelConfig cvr_config;
  cvr_config.hidden = {32, 16};
  cvr_config.batch_size = 256;
  cvr_config.epochs = static_cast<int32_t>(cvr_epochs.value());
  cvr_config.seed = data_config.seed;
  auto cvr = CvrModel::Create(builder.value().dim(), cvr_config);
  if (!cvr.ok()) return Fail(cvr.status());
  auto loss = cvr.value().Train(builder.value(), samples.train);
  if (!loss.ok()) return Fail(loss.status());

  StoreExportOptions export_options;
  export_options.include_index = !cl.GetBool("no-index");
  if (Status status = ExportEmbeddingStore(model.value(), dataset.value(),
                                           spec, cvr.value(), out,
                                           export_options);
      !status.ok()) {
    return Fail(status);
  }
  std::printf(
      "exported store %s in %.1fs: %d users x %d items, %d levels "
      "(d = %d), feature dim %d, cvr train loss %.4f\n",
      out.c_str(), timer.Seconds(), data_config.num_users,
      data_config.num_items, model.value().num_levels(),
      model.value().level_dim(), builder.value().dim(), loss.value());
  return 0;
}

int Run(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) return Fail(cl.status());
  ApplyObsFlags(cl.value());
  const std::string& command = cl.value().command();
  int code = 2;
  if (command == "gen-data") {
    code = RunGenData(cl.value());
  } else if (command == "fit") {
    code = RunFit(cl.value());
  } else if (command == "info") {
    code = RunInfo(cl.value());
  } else if (command == "embed") {
    code = RunEmbed(cl.value());
  } else if (command == "clusters") {
    code = RunClusters(cl.value());
  } else if (command == "export-store") {
    code = RunExportStore(cl.value());
  } else {
    return Usage();
  }
  if (code == 0) {
    if (int obs_code = DumpObsArtifacts(cl.value()); obs_code != 0) {
      return obs_code;
    }
  }
  return code;
}

}  // namespace
}  // namespace hignn

int main(int argc, char** argv) { return hignn::Run(argc, argv); }
